package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// silence runs fn with os.Stdout discarded, returning fn's error; used
// for asserting error paths without leaking output into the test log.
func silence(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return fn()
}

// capture runs fn with os.Stdout redirected to a buffer.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", errRun, out)
	}
	return out
}

// genInstanceFile writes a generated instance to a temp file and returns
// its path.
func genInstanceFile(t *testing.T, genArgs ...string) string {
	t.Helper()
	out := capture(t, func() error { return cmdGen(genArgs) })
	path := filepath.Join(t.TempDir(), "instance.txt")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenAndStats(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4")
	out := capture(t, func() error { return cmdStats([]string{path}) })
	for _, want := range []string{"agents=16", "resources=16", "parties=16", "hypergraph:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestGenKinds(t *testing.T) {
	for _, kind := range []string{"torus", "grid", "random", "sensornet", "isp", "safetight"} {
		out := capture(t, func() error {
			return cmdGen([]string{"-kind", kind, "-dims", "3x3", "-agents", "12"})
		})
		if !strings.HasPrefix(out, "mmlp ") {
			t.Fatalf("kind %s: output does not start with header:\n%s", kind, out)
		}
	}
}

func TestGenRejectsUnknownKind(t *testing.T) {
	if err := cmdGen([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4")
	for _, alg := range []string{"optimal", "safe", "average"} {
		out := capture(t, func() error {
			return cmdSolve([]string{"-alg", alg, "-radius", "1", path})
		})
		if !strings.Contains(out, "ω") {
			t.Fatalf("alg %s output missing ω:\n%s", alg, out)
		}
	}
	out := capture(t, func() error { return cmdSolve([]string{"-alg", "safe", "-x", path}) })
	if !strings.Contains(out, "x[0]") {
		t.Fatalf("missing activity vector:\n%s", out)
	}
	if err := cmdSolve([]string{"-alg", "bogus", path}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestGamma(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "8")
	out := capture(t, func() error { return cmdGamma([]string{"-maxr", "3", path}) })
	for _, want := range []string{"γ(0)", "γ(3)", "Theorem 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gamma output missing %q:\n%s", want, out)
		}
	}
}

func TestLowerBoundCommand(t *testing.T) {
	out := capture(t, func() error {
		return cmdLowerBound([]string{"-dvi", "3", "-dvk", "2"})
	})
	for _, want := range []string{"checks: ok=true", "theorem bound 1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("lowerbound output missing %q:\n%s", want, out)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	path := genInstanceFile(t, "-kind", "random", "-agents", "10")
	jsonOut := capture(t, func() error { return cmdConvert([]string{"-to", "json", path}) })
	if !strings.Contains(jsonOut, "\"agents\"") {
		t.Fatalf("json output malformed:\n%s", jsonOut)
	}
	textOut := capture(t, func() error { return cmdConvert([]string{"-to", "text", path}) })
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if textOut != string(original) {
		t.Fatal("text round trip changed the instance")
	}
	if err := cmdConvert([]string{"-to", "bogus", path}); err == nil {
		t.Fatal("want error for unknown format")
	}
}

func TestParseDims(t *testing.T) {
	if dims, err := parseDims("16x16"); err != nil || len(dims) != 2 || dims[0] != 16 {
		t.Fatalf("parseDims(16x16) = %v, %v", dims, err)
	}
	if dims, err := parseDims("64"); err != nil || len(dims) != 1 || dims[0] != 64 {
		t.Fatalf("parseDims(64) = %v, %v", dims, err)
	}
	for _, bad := range []string{"", "ax3", "0x4", "-2"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims(%q) should fail", bad)
		}
	}
}

func TestReadInstanceErrors(t *testing.T) {
	if _, err := readInstance([]string{"a", "b"}); err == nil {
		t.Fatal("two files must fail")
	}
	if _, err := readInstance([]string{filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestLowerBoundRender(t *testing.T) {
	out := capture(t, func() error {
		return cmdLowerBound([]string{"-dvi", "3", "-dvk", "2", "-render"})
	})
	for _, want := range []string{"Figure 1", "type III hyperedges", "witness x̂"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q", want)
		}
	}
}

func TestFigure2Command(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "5x5")
	out := capture(t, func() error {
		return cmdFigure2([]string{"-u", "3", "-k", "3", "-i", "3", "-radius", "1", path})
	})
	for _, want := range []string{"Figure 2", "V^u", "S_k", "U_i"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure2 output missing %q", want)
		}
	}
	if err := cmdFigure2([]string{"-u", "999", path}); err == nil {
		t.Fatal("out-of-range agent must fail")
	}
}

func TestVerifyCommand(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4")
	// A feasible solution: all zeros.
	solPath := filepath.Join(t.TempDir(), "sol.txt")
	zeros := strings.Repeat("0\n", 16)
	if err := os.WriteFile(solPath, []byte(zeros), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return cmdVerify([]string{"-sol", solPath, path}) })
	if !strings.Contains(out, "feasible: yes") {
		t.Fatalf("verify output:\n%s", out)
	}
	// An infeasible solution must fail.
	big := strings.Repeat("9\n", 16)
	if err := os.WriteFile(solPath, []byte(big), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := silence(t, func() error { return cmdVerify([]string{"-sol", solPath, path}) }); err == nil {
		t.Fatal("infeasible solution must fail")
	}
	// Wrong arity must fail.
	if err := os.WriteFile(solPath, []byte("0 0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-sol", solPath, path}); err == nil {
		t.Fatal("wrong-arity solution must fail")
	}
	// Missing -sol must fail.
	if err := cmdVerify([]string{path}); err == nil {
		t.Fatal("missing -sol must fail")
	}
}

func TestSolveExtraAlgorithms(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4")
	for _, alg := range []string{"revised", "bisect", "adaptive"} {
		out := capture(t, func() error {
			return cmdSolve([]string{"-alg", alg, "-target", "3", path})
		})
		if !strings.Contains(out, "ω") {
			t.Fatalf("alg %s output missing ω:\n%s", alg, out)
		}
	}
}

// TestRunExitCodes pins the process exit-code contract: 0 on success,
// 1 for runtime errors, 2 for usage errors, with diagnostics on stderr.
func TestRunExitCodes(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "3x3")
	cases := []struct {
		name string
		args []string
		want int
		msg  string // required substring of stderr
	}{
		{"no args", nil, 2, "usage:"},
		{"unknown command", []string{"bogus"}, 2, "unknown command"},
		{"bad flag", []string{"solve", "-nosuchflag", path}, 2, "mmlp solve:"},
		{"bad flag value", []string{"gamma", "-maxr", "x", path}, 2, "mmlp gamma:"},
		{"missing file", []string{"stats", "no-such-file.txt"}, 1, "mmlp stats:"},
		{"unknown algorithm", []string{"solve", "-alg", "bogus", path}, 1, "unknown algorithm"},
		{"unknown kind", []string{"gen", "-kind", "bogus"}, 1, "unknown kind"},
		{"help", []string{"solve", "-h"}, 0, ""},
		{"success", []string{"stats", path}, 0, ""},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			var stderr bytes.Buffer
			var got int
			capture(t, func() error {
				got = run(cse.args, &stderr)
				return nil
			})
			if got != cse.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", cse.args, got, cse.want, stderr.String())
			}
			if cse.msg != "" && !strings.Contains(stderr.String(), cse.msg) {
				t.Fatalf("stderr missing %q:\n%s", cse.msg, stderr.String())
			}
		})
	}
}

// TestSimulateCommand runs every engine over both protocols and checks
// that the reported trace lines agree across engines.
func TestSimulateCommand(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4")
	for _, proto := range []string{"safe", "average"} {
		var lines []string
		for _, engine := range []string{"sequential", "goroutines", "sharded"} {
			out := capture(t, func() error {
				return cmdSimulate([]string{"-proto", proto, "-engine", engine, "-shards", "3", path})
			})
			if !strings.Contains(out, "ω") || !strings.Contains(out, "rounds") {
				t.Fatalf("%s/%s output malformed:\n%s", proto, engine, out)
			}
			// Strip the engine name: everything after the colon must match.
			lines = append(lines, out[strings.Index(out, ":"):])
		}
		if lines[0] != lines[1] || lines[1] != lines[2] {
			t.Fatalf("%s: engines disagree:\n%v", proto, lines)
		}
	}
	if err := cmdSimulate([]string{"-proto", "bogus", path}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := cmdSimulate([]string{"-engine", "bogus", path}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestLPExportImportRoundTrip(t *testing.T) {
	path := genInstanceFile(t, "-kind", "torus", "-dims", "4x4", "-weights", "-seed", "3")
	mps := capture(t, func() error { return cmdLPExport([]string{path}) })
	if !strings.Contains(mps, "OBJSENSE") || !strings.Contains(mps, "OMEGA") {
		t.Fatalf("unexpected MPS output:\n%s", mps)
	}
	mpsPath := filepath.Join(t.TempDir(), "instance.mps")
	if err := os.WriteFile(mpsPath, []byte(mps), 0o644); err != nil {
		t.Fatal(err)
	}
	text := capture(t, func() error { return cmdMPSImport([]string{"-to", "text", mpsPath}) })
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if text != string(orig) {
		t.Fatalf("mps-import text differs from the original instance:\n%s", text)
	}
	out := capture(t, func() error { return cmdMPSImport([]string{"-to", "json", mpsPath}) })
	if !strings.Contains(out, "\"") {
		t.Fatalf("json output: %q", out)
	}
}

func TestLPExportBall(t *testing.T) {
	path := genInstanceFile(t, "-kind", "grid", "-dims", "8x8", "-seed", "1")
	plain := capture(t, func() error { return cmdLPExport([]string{"-agent", "0", "-radius", "1", path}) })
	if !strings.Contains(plain, "BALL_A0_R1") || !strings.Contains(plain, "OMEGA") {
		t.Fatalf("ball export:\n%s", plain)
	}
	reduced := capture(t, func() error {
		return cmdLPExport([]string{"-agent", "0", "-radius", "1", "-presolve", path})
	})
	if len(reduced) >= len(plain) {
		t.Fatalf("presolve did not shrink the unit-weight corner ball export (%d vs %d bytes)", len(reduced), len(plain))
	}
	if err := silence(t, func() error {
		return cmdLPExport([]string{"-agent", "999", path})
	}); err == nil {
		t.Fatal("out-of-range agent accepted")
	}
	if err := silence(t, func() error {
		return cmdLPExport([]string{"-presolve", path})
	}); err == nil {
		t.Fatal("-presolve without -agent accepted")
	}
}
