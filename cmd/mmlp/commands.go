package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"maxminlp/internal/apps"
	"maxminlp/internal/core"
	"maxminlp/internal/dist"
	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lowerbound"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	kind := fs.String("kind", "torus", "torus | grid | random | sensornet | isp | safetight")
	dims := fs.String("dims", "16x16", "lattice dimensions for torus/grid, e.g. 64 or 16x16")
	seed := fs.Int64("seed", 1, "random seed")
	agents := fs.Int("agents", 50, "agents for -kind random")
	weights := fs.Bool("weights", false, "random coefficients instead of unit ones")
	deltaVI := fs.Int("dvi", 3, "ΔVI for random/safetight")
	deltaVK := fs.Int("dvk", 3, "ΔVK for random")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var in *mmlp.Instance
	switch *kind {
	case "torus", "grid":
		d, err := parseDims(*dims)
		if err != nil {
			return err
		}
		opt := gen.LatticeOptions{RandomWeights: *weights, Rng: rng}
		if *kind == "torus" {
			in, _ = gen.Torus(d, opt)
		} else {
			in, _ = gen.Grid(d, opt)
		}
	case "random":
		in = gen.Random(gen.RandomOptions{
			Agents: *agents, Resources: *agents, Parties: *agents / 2,
			MaxVI: *deltaVI, MaxVK: *deltaVK, UnitCoefficients: !*weights,
		}, rng)
	case "safetight":
		in = gen.SafeTight(*deltaVI, 4)
	case "sensornet":
		sn := apps.RandomSensorNetwork(apps.SensorNetworkOptions{
			Sensors: *agents, Relays: max(*agents/4, 1), Areas: max(*agents/3, 1),
			RadioRange: 0.3, SenseRange: 0.25, MaxLinksPerSensor: 3,
		}, rng)
		var err error
		if in, err = sn.Instance(); err != nil {
			return err
		}
	case "isp":
		net := apps.RandomISP(apps.ISPOptions{
			Customers: max(*agents/4, 1), LastMilesPerCustomer: 2,
			Routers: max(*agents/8, 1), RoutersPerLastMile: 2,
		}, rng)
		var err error
		if in, err = net.Instance(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return in.WriteText(os.Stdout)
}

func cmdStats(args []string) error {
	in, err := readInstance(args)
	if err != nil {
		return err
	}
	fmt.Println(in.Stats())
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	fmt.Printf("hypergraph: max degree %d, diameter %d, components %d\n",
		g.MaxDegree(), g.Diameter(), len(g.Components()))
	csr := g.CSR()
	fmt.Printf("csr index: incidence %d nonzeros (%d bytes), adjacency %d edges\n",
		csr.Nonzeros(), csr.MemoryBytes(), g.NumEdges())
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	proto := fs.String("proto", "average", "safe | average")
	radius := fs.Int("radius", 1, "averaging radius R for -proto average")
	engine := fs.String("engine", "sequential", "sequential | goroutines | sharded")
	shards := fs.Int("shards", 0, "workers for -engine sharded; ≤ 0 selects GOMAXPROCS")
	printX := fs.Bool("x", false, "print the full activity vector")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	nw, err := dist.NewNetwork(in, g)
	if err != nil {
		return err
	}
	var p dist.Protocol
	switch *proto {
	case "safe":
		p = dist.SafeProtocol{}
	case "average":
		p = dist.AverageProtocol{Radius: *radius}
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	var tr *dist.Trace
	switch *engine {
	case "sequential":
		tr, err = nw.RunSequential(p)
	case "goroutines":
		tr, err = nw.RunGoroutines(p)
	case "sharded":
		tr, err = nw.RunSharded(p, *shards)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		return err
	}
	if v := in.Violation(tr.X); v > 1e-9 {
		return fmt.Errorf("internal error: solution violates constraints by %g", v)
	}
	fmt.Printf("%s on %s: rounds %d, messages %d, payload %d, max/node %d, ω = %.6g\n",
		tr.Protocol, *engine, tr.Rounds, tr.Messages, tr.Payload, tr.MaxNodePayload,
		in.Objective(tr.X))
	if *printX {
		for v, xv := range tr.X {
			fmt.Printf("x[%d] = %.6g\n", v, xv)
		}
	}
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	alg := fs.String("alg", "optimal", "optimal | revised | bisect | safe | average | adaptive")
	radius := fs.Int("radius", 1, "radius R for -alg average")
	target := fs.Float64("target", 2, "target ratio for -alg adaptive")
	noDedup := fs.Bool("nodedup", false, "disable isomorphic-ball LP dedup for -alg average/adaptive (reference path; same outputs)")
	presolve := fs.Bool("presolve", false, "reduce ball LPs before dedup fingerprinting for -alg average/adaptive (value-exact; more dedup hits on boundary-heavy instances)")
	printX := fs.Bool("x", false, "print the full activity vector")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	var x []float64
	switch *alg {
	case "optimal":
		res, err := lp.SolveMaxMin(in)
		if err != nil {
			return err
		}
		x = res.X
		fmt.Printf("optimal ω = %.6g (%d pivots)\n", res.Omega, res.Pivots)
	case "revised":
		res, err := lp.SolveMaxMinWith(in, lp.BackendRevised)
		if err != nil {
			return err
		}
		x = res.X
		fmt.Printf("optimal (revised) ω = %.6g (%d pivots)\n", res.Omega, res.Pivots)
	case "bisect":
		res, err := lp.SolveMaxMinBisect(in, 1e-9)
		if err != nil {
			return err
		}
		x = res.X
		fmt.Printf("optimal (bisection) ω = %.6g (%d probes)\n", res.Omega, res.Pivots)
	case "safe":
		x = core.Safe(in)
		fmt.Printf("safe ω = %.6g (proven ratio ≤ ΔVI = %d)\n", in.Objective(x), in.Degrees().MaxVI)
	case "average":
		g := hypergraph.FromInstance(in, hypergraph.Options{})
		res, err := core.LocalAverageOpt(in, g, *radius, core.AverageOptions{NoDedup: *noDedup, Presolve: *presolve})
		if err != nil {
			return err
		}
		x = res.X
		fmt.Printf("average R=%d ω = %.6g (certificate %.4g, %d local LPs solved, %d dedup-avoided)\n",
			*radius, in.Objective(x), res.RatioCertificate(), res.LocalLPs, res.SolvesAvoided)
	case "adaptive":
		g := hypergraph.FromInstance(in, hypergraph.Options{})
		res, err := core.AdaptiveAverageOpt(in, g, *target, 8, core.AverageOptions{NoDedup: *noDedup, Presolve: *presolve})
		if err != nil {
			return err
		}
		x = res.X
		fmt.Printf("adaptive target %.4g: achieved=%v at R=%d ω = %.6g (certificate %.4g, %d local LPs solved, %d dedup-avoided)\n",
			*target, res.Achieved, res.Radius, in.Objective(x), res.RatioCertificate(), res.LocalLPs, res.SolvesAvoided)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if v := in.Violation(x); v > 1e-9 {
		return fmt.Errorf("internal error: solution violates constraints by %g", v)
	}
	if *printX {
		for v, xv := range x {
			fmt.Printf("x[%d] = %.6g\n", v, xv)
		}
	}
	return nil
}

func cmdGamma(args []string) error {
	fs := flag.NewFlagSet("gamma", flag.ContinueOnError)
	maxR := fs.Int("maxr", 6, "largest radius to report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	prof := g.GammaProfile(*maxR)
	for r, val := range prof {
		fmt.Printf("γ(%d) = %.6g\n", r, val)
	}
	fmt.Printf("Theorem 3 ratio bound γ(R−1)·γ(R) at R=%d: %.6g\n", *maxR, prof[*maxR-1]*prof[*maxR])
	return nil
}

func cmdLowerBound(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	deltaVI := fs.Int("dvi", 3, "ΔVI ≥ 2")
	deltaVK := fs.Int("dvk", 2, "ΔVK ≥ 2")
	bigR := fs.Int("R", 2, "hypertree parameter R > r")
	horizon := fs.Int("r", 1, "local horizon r being fooled")
	seed := fs.Int64("seed", 1, "seed for random template generation")
	render := fs.Bool("render", false, "print the Figure-1 sketch of the construction")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	params := lowerbound.Params{
		DeltaVI: *deltaVI, DeltaVK: *deltaVK, R: *bigR, LocalHorizon: *horizon,
		Rng: rand.New(rand.NewSource(*seed)),
	}
	c, err := lowerbound.Build(params)
	if err != nil {
		return err
	}
	x := core.Safe(c.S)
	sp, err := c.DeriveSPrime(x)
	if err != nil {
		return err
	}
	rep := c.Check(x, sp)
	if *render {
		c.RenderFigure1(os.Stdout)
		sp.RenderSPrime(os.Stdout, c)
		fmt.Println()
	}
	fmt.Printf("S: %s\n", c.S.Stats())
	fmt.Printf("S': %s\n", sp.Instance().Stats())
	fmt.Printf("template: %d-regular, %d vertices, girth %d (need ≥ %d)\n",
		params.Degree(), c.Q.NumVertices(), rep.Girth, params.MinCycle())
	fmt.Printf("checks: ok=%v (witness ω=%.4g, %d views compared)\n", rep.OK(), rep.WitnessOmega, rep.ViewsChecked)
	if !rep.OK() {
		return fmt.Errorf("checks failed: %v", rep.Errors)
	}
	opt, err := lp.SolveMaxMin(sp.Instance())
	if err != nil {
		return err
	}
	achieved := sp.Instance().Objective(core.Safe(sp.Instance()))
	fmt.Printf("safe on S': ω = %.4g, ω* = %.4g, ratio %.4g vs theorem bound %.4g\n",
		achieved, opt.Omega, opt.Omega/achieved, params.TheoremBound())
	return nil
}

func cmdFigure2(args []string) error {
	fs := flag.NewFlagSet("figure2", flag.ContinueOnError)
	agent := fs.Int("u", 0, "agent u")
	party := fs.Int("k", 0, "party k")
	resource := fs.Int("i", 0, "resource i")
	radius := fs.Int("radius", 1, "radius R")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	return core.RenderFigure2(os.Stdout, in, g, *agent, *party, *resource, *radius)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	solPath := fs.String("sol", "", "solution file: one x value per line, agent order (required)")
	tolFlag := fs.Float64("tol", 1e-9, "feasibility tolerance")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *solPath == "" {
		return fmt.Errorf("-sol is required")
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	x, err := readSolution(*solPath, in.NumAgents())
	if err != nil {
		return err
	}
	violation := in.Violation(x)
	omega := in.Objective(x)
	fmt.Printf("agents: %d\nviolation: %g (tolerance %g)\nω: %g\n", in.NumAgents(), violation, *tolFlag, omega)
	if violation > *tolFlag {
		return fmt.Errorf("solution is infeasible by %g", violation)
	}
	fmt.Println("feasible: yes")
	// If the optimum is cheap to compute, report the ratio too.
	if in.NumAgents() <= 400 {
		opt, err := lp.SolveMaxMin(in)
		if err == nil && omega > 0 {
			fmt.Printf("ω*: %g  (ratio %g)\n", opt.Omega, opt.Omega/omega)
		}
	}
	return nil
}

func readSolution(path string, n int) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != n {
		return nil, fmt.Errorf("solution has %d values, instance has %d agents", len(fields), n)
	}
	x := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q at position %d: %w", f, i, err)
		}
		x[i] = v
	}
	return x, nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	to := fs.String("to", "json", "json | text")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	switch *to {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(in)
	case "text":
		return in.WriteText(os.Stdout)
	default:
		return fmt.Errorf("unknown target format %q", *to)
	}
}

// cmdLPExport writes MPS. Without -agent the whole instance is exported
// as the global max-min LP (maximise ω subject to resource and party
// rows); with -agent and -radius one agent's ball LP (9) is exported —
// the exact rows the averaging algorithm solves, optionally after the
// same presolve reduction the dedup cache fingerprints.
func cmdLPExport(args []string) error {
	fs := flag.NewFlagSet("lp-export", flag.ContinueOnError)
	agent := fs.Int("agent", -1, "export this agent's ball LP instead of the whole instance")
	radius := fs.Int("radius", 1, "ball radius for -agent")
	presolve := fs.Bool("presolve", false, "apply the solver's row reduction to the exported ball LP")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := readInstance(fs.Args())
	if err != nil {
		return err
	}
	if *agent < 0 {
		if *presolve {
			return fmt.Errorf("-presolve applies to ball LPs; combine it with -agent")
		}
		return in.WriteMPS(os.Stdout)
	}
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	p, ball, err := core.BallProblem(in, g, *agent, *radius, *presolve)
	if err != nil {
		return err
	}
	f := &lp.MPSFile{
		Name:     fmt.Sprintf("BALL_A%d_R%d", *agent, *radius),
		Problem:  p,
		ObjName:  "OMEGA_OBJ",
		ColNames: make([]string, len(p.Obj)),
	}
	for j, v := range ball {
		f.ColNames[j] = fmt.Sprintf("X%d", v)
	}
	f.ColNames[len(ball)] = "OMEGA"
	return lp.WriteMPSFile(os.Stdout, f)
}

// cmdMPSImport reads an instance-shaped MPS file (the lp-export global
// form) and re-emits it in the library's text or JSON format.
func cmdMPSImport(args []string) error {
	fs := flag.NewFlagSet("mps-import", flag.ContinueOnError)
	to := fs.String("to", "text", "text | json")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	rest := fs.Args()
	if len(rest) > 1 {
		return fmt.Errorf("expected at most one MPS file, got %v", rest)
	}
	if len(rest) == 1 && rest[0] != "-" {
		fh, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer fh.Close()
		r = fh
	}
	in, err := mmlp.ReadMPS(r)
	if err != nil {
		return err
	}
	switch *to {
	case "text":
		return in.WriteText(os.Stdout)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(in)
	default:
		return fmt.Errorf("unknown target format %q", *to)
	}
}
