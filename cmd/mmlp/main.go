// Command mmlp is the command-line front end of the library: it
// generates, inspects and solves max-min LP instances, measures the
// relative growth γ(r) of their communication hypergraphs, and drives the
// Theorem-1 lower-bound construction.
//
// Usage:
//
//	mmlp gen        -kind torus -dims 16x16 > instance.txt
//	mmlp stats      instance.txt
//	mmlp solve      -alg optimal|safe|average [-radius R] instance.txt
//	mmlp gamma      -maxr 6 instance.txt
//	mmlp lowerbound -dvi 3 -dvk 2
//	mmlp convert    -to json instance.txt
//
// Instances are read from the file argument or stdin ("-") in the text
// format of the mmlp package (see `mmlp gen` output).
package main

import (
	"fmt"
	"os"
)

type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands = []command{
	{"gen", "generate an instance (torus, grid, random, sensornet, isp)", cmdGen},
	{"stats", "print instance statistics and degree bounds", cmdStats},
	{"solve", "solve an instance with optimal, safe or average", cmdSolve},
	{"gamma", "print the relative growth profile γ(r)", cmdGamma},
	{"lowerbound", "build and verify the Theorem-1 construction", cmdLowerBound},
	{"figure2", "print Figure 2 (Theorem-3 set definitions) on an instance", cmdFigure2},
	{"verify", "check a solution file against an instance (feasibility + ω)", cmdVerify},
	{"convert", "convert between the text and JSON formats", cmdConvert},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	for _, c := range commands {
		if c.name == name {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "mmlp %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "mmlp: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmlp <command> [flags] [instance-file|-]")
	fmt.Fprintln(os.Stderr, "commands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", c.name, c.summary)
	}
}
