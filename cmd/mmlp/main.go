// Command mmlp is the command-line front end of the library: it
// generates, inspects and solves max-min LP instances, measures the
// relative growth γ(r) of their communication hypergraphs, runs the
// distributed engines, and drives the Theorem-1 lower-bound
// construction.
//
// Usage:
//
//	mmlp gen        -kind torus -dims 16x16 > instance.txt
//	mmlp stats      instance.txt
//	mmlp solve      -alg optimal|safe|average [-radius R] instance.txt
//	mmlp simulate   -proto average -engine sharded -shards 4 instance.txt
//	mmlp gamma      -maxr 6 instance.txt
//	mmlp lowerbound -dvi 3 -dvk 2
//	mmlp convert    -to json instance.txt
//	mmlp lp-export  instance.txt > instance.mps
//	mmlp lp-export  -agent 12 -radius 2 -presolve instance.txt
//	mmlp mps-import -to text instance.mps
//
// Instances are read from the file argument or stdin ("-") in the text
// format of the mmlp package (see `mmlp gen` output).
//
// Exit status is 0 on success, 1 for runtime errors (unreadable or
// malformed input, solver failures) and 2 for usage errors (unknown
// command, bad flags). Errors go to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands = []command{
	{"gen", "generate an instance (torus, grid, random, sensornet, isp)", cmdGen},
	{"stats", "print instance statistics and degree bounds", cmdStats},
	{"solve", "solve an instance with optimal, safe or average", cmdSolve},
	{"simulate", "run a protocol on a distributed engine (sequential, goroutines, sharded)", cmdSimulate},
	{"gamma", "print the relative growth profile γ(r)", cmdGamma},
	{"lowerbound", "build and verify the Theorem-1 construction", cmdLowerBound},
	{"figure2", "print Figure 2 (Theorem-3 set definitions) on an instance", cmdFigure2},
	{"verify", "check a solution file against an instance (feasibility + ω)", cmdVerify},
	{"convert", "convert between the text and JSON formats", cmdConvert},
	{"lp-export", "export the instance (or one agent's ball LP) as MPS", cmdLPExport},
	{"mps-import", "read an instance-shaped MPS file back into the text/JSON formats", cmdMPSImport},
}

// usageError marks an error as caller misuse; run exits 2 for it instead
// of 1. Flag-parsing failures are wrapped in it by parseFlags.
type usageError struct{ error }

// parseFlags parses a command's flag set, classifying failures as usage
// errors. flag.ErrHelp (-h / -help) is passed through so run can exit 0
// after the flag package has printed the defaults.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run dispatches to a subcommand and returns the process exit code. It
// exists apart from main so tests can assert exit codes and stderr
// output without spawning a process.
func run(args []string, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	name := args[0]
	for _, c := range commands {
		if c.name != name {
			continue
		}
		err := c.run(args[1:])
		switch {
		case err == nil:
			return 0
		case errors.Is(err, flag.ErrHelp):
			return 0
		default:
			fmt.Fprintf(stderr, "mmlp %s: %v\n", name, err)
			var ue usageError
			if errors.As(err, &ue) {
				return 2
			}
			return 1
		}
	}
	fmt.Fprintf(stderr, "mmlp: unknown command %q\n\n", name)
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: mmlp <command> [flags] [instance-file|-]")
	fmt.Fprintln(w, "commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-11s %s\n", c.name, c.summary)
	}
}
