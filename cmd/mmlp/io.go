package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"maxminlp/internal/mmlp"
)

// readInstance loads an instance from the trailing file argument of a
// command, or from stdin when the argument is missing or "-".
func readInstance(args []string) (*mmlp.Instance, error) {
	var r io.Reader = os.Stdin
	if len(args) > 1 {
		return nil, fmt.Errorf("expected at most one instance file, got %v", args)
	}
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mmlp.ReadText(f)
	}
	return mmlp.ReadText(r)
}

// parseDims parses "16x16" or "64" into lattice dimensions.
func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dimensions %q (want e.g. 64 or 16x16)", s)
		}
		dims[i] = d
	}
	return dims, nil
}
