package main

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
)

// serverObs bundles the daemon's always-on observability: one metric
// registry shared by every session, the request tracer, and the
// counters the handlers record directly. mmlpd never runs with metrics
// disabled — the registry is cheap and /metrics must always answer —
// so unlike the library seams nothing here is nil.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	solve  *obs.SolveMetrics // attached to every loaded session

	// endpoints in registration order with their latency histograms,
	// for the /v1/stats per-endpoint summaries.
	endpoints []string
	latency   map[string]*obs.Histogram

	panics    *obs.Counter
	slowReqs  *obs.Counter
	instances *obs.Gauge

	// Durability and self-healing.
	walAppends    *obs.Counter
	walFsync      *obs.Histogram
	recoverySec   *obs.Gauge
	reconnects    *obs.Counter
	workersInSync *obs.Gauge

	// Go runtime stats, refreshed at scrape time.
	uptime     *obs.Gauge
	goroutines *obs.Gauge
	heapBytes  *obs.Gauge
	heapObjs   *obs.Gauge
	totalAlloc *obs.Gauge
}

func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	return &serverObs{
		reg:     reg,
		tracer:  obs.NewTracer(1024),
		solve:   obs.NewSolveMetrics(reg),
		latency: make(map[string]*obs.Histogram),
		panics: reg.Counter("mmlpd_panics_recovered_total",
			"Panics recovered while validating untrusted instance specs."),
		slowReqs: reg.Counter("mmlpd_slow_requests_total",
			"Requests slower than the slow-query threshold."),
		instances: reg.Gauge("mmlpd_instances", "Instances currently loaded."),
		walAppends: reg.Counter("mmlpd_wal_appends_total",
			"Records appended to the write-ahead log."),
		walFsync: reg.Histogram("mmlpd_wal_fsync_seconds",
			"WAL fsync latency.", obs.DefLatencyBuckets),
		recoverySec: reg.Gauge("mmlpd_recovery_replay_seconds",
			"Wall time the last WAL replay took at startup."),
		reconnects: reg.Counter("mmlpd_worker_reconnects_total",
			"Workers readmitted after the cluster first formed."),
		workersInSync: reg.Gauge("mmlpd_workers_in_sync",
			"Workers currently admitted to the cluster roster."),
		uptime: reg.Gauge("mmlpd_uptime_seconds", "Seconds since the daemon started."),
		goroutines: reg.Gauge("go_goroutines",
			"Number of goroutines that currently exist."),
		heapBytes: reg.Gauge("go_memstats_heap_alloc_bytes",
			"Bytes of allocated heap objects."),
		heapObjs: reg.Gauge("go_memstats_heap_objects",
			"Number of allocated heap objects."),
		totalAlloc: reg.Gauge("go_memstats_alloc_bytes_total",
			"Cumulative bytes allocated for heap objects."),
	}
}

// requests returns the request counter for one endpoint/status pair.
// Registration is idempotent, so looking it up per response is fine at
// HTTP frequency (the solver hot paths never come through here).
func (o *serverObs) requests(endpoint string, code int) *obs.Counter {
	return o.reg.Counter("mmlpd_http_requests_total",
		"HTTP requests served, by endpoint and status code.",
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code)))
}

// rejected returns the rejection counter for one serving-cap reason
// ("instance_too_large", "patch_entries", "topo_ops", "agent_growth",
// "row_growth").
func (o *serverObs) rejected(reason string) *obs.Counter {
	return o.reg.Counter("mmlpd_rejections_total",
		"Requests rejected by serving caps, by reason.", obs.L("reason", reason))
}

// codeWriter captures the status code a handler writes.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type spanCtxKey struct{}

// spanOf returns the request's trace span; nil (a no-op span) when the
// request did not come through wrap.
func spanOf(r *http.Request) *obs.Span {
	sp, _ := r.Context().Value(spanCtxKey{}).(*obs.Span)
	return sp
}

// wrap instruments one endpoint: a per-request trace span (handlers
// mark phases on it via spanOf), a latency histogram, and a request
// counter labelled with the response code.
func (s *server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	o := s.obs
	lat := o.reg.Histogram("mmlpd_http_request_seconds",
		"HTTP request latency by endpoint.", obs.DefLatencyBuckets,
		obs.L("endpoint", endpoint))
	o.endpoints = append(o.endpoints, endpoint)
	o.latency[endpoint] = lat
	return func(w http.ResponseWriter, r *http.Request) {
		// While the daemon replays its WAL (or a coordinator waits for
		// its cluster), every API request gets an explicit "come back
		// shortly" — only liveness and metrics answer during recovery.
		if s.recovering.Load() && endpoint != "healthz" && endpoint != "metrics" {
			apiErrorObj(w, &httpapi.Error{
				Code:        httpapi.CodeRecovering,
				Message:     "recovering: replaying durable state",
				RetryAfterS: 1,
			})
			o.requests(endpoint, httpapi.Status(httpapi.CodeRecovering)).Inc()
			return
		}
		sp := o.tracer.StartSpan(endpoint)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r.WithContext(context.WithValue(r.Context(), spanCtxKey{}, sp)))
		sp.Annotate(fmt.Sprintf("code=%d", cw.code))
		lat.ObserveDuration(sp.End())
		o.requests(endpoint, cw.code).Inc()
	}
}

// setSlow arms the slow-query log: spans slower than d are logged and
// counted. d <= 0 disables it.
func (s *server) setSlow(d time.Duration) {
	s.obs.tracer.SetSlow(d, func(e obs.Event) {
		s.obs.slowReqs.Inc()
		s.logf("mmlpd: slow request %s (%s): %.1fms",
			e.Name, e.Note, float64(e.DurNs)/1e6)
	})
}

// handleMetrics serves the Prometheus text exposition of everything the
// daemon records, refreshing the Go runtime gauges first.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	o := s.obs
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.goroutines.Set(float64(runtime.NumGoroutine()))
	o.heapBytes.Set(float64(ms.HeapAlloc))
	o.heapObjs.Set(float64(ms.HeapObjects))
	o.totalAlloc.Set(float64(ms.TotalAlloc))
	o.uptime.Set(time.Since(s.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := o.reg.WritePrometheus(w); err != nil {
		s.logf("mmlpd: write /metrics: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	infos := make([]instanceInfo, len(ms))
	for i, m := range ms {
		infos[i] = s.describe(m)
	}
	o, sm := s.obs, s.obs.solve
	http_ := make(map[string]obs.HistogramSnapshot, len(o.endpoints))
	for _, ep := range o.endpoints {
		http_[ep] = o.latency[ep].Snapshot()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Uptime:    time.Since(s.started).Round(time.Millisecond).String(),
		Instances: infos,
		Solve: solveStats{
			Phases: map[string]obs.HistogramSnapshot{
				"fingerprint": sm.PhaseFingerprint.Snapshot(),
				"group":       sm.PhaseGroup.Snapshot(),
				"lp_solve":    sm.PhaseLPSolve.Snapshot(),
				"accumulate":  sm.PhaseAccumulate.Snapshot(),
			},
			Updates: map[string]obs.HistogramSnapshot{
				"weights":  sm.WeightUpdateSeconds.Snapshot(),
				"topology": sm.TopoUpdateSeconds.Snapshot(),
			},
			Passes: map[string]int64{
				"full":        sm.FullSolves.Value(),
				"incremental": sm.IncrementalSolves.Value(),
				"warm":        sm.WarmHits.Value(),
			},
			Cache: map[string]int64{
				"hit":  sm.CacheHits.Value(),
				"miss": sm.CacheMisses.Value(),
			},
			AgentsResolved:      sm.AgentsResolved.Value(),
			LPSolves:            sm.LP.Solves.Value(),
			LPPivots:            sm.LP.Pivots.Value(),
			Presolve:            s.presolve,
			PresolveRowsDropped: sm.PresolveRowsDropped.Value(),
		},
		HTTP:            http_,
		PanicsRecovered: o.panics.Value(),
		SlowRequests:    o.slowReqs.Value(),
	})
}
