package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"maxminlp"
	"maxminlp/internal/obs"
)

// server is the mmlpd state: one Solver session per loaded instance.
// The map is guarded by mu; each session serialises its own queries
// internally, so concurrent requests against one instance are safe and
// requests against different instances proceed in parallel.
type server struct {
	mu        sync.Mutex
	instances map[string]*managed
	nextID    int
	started   time.Time
	logf      func(format string, args ...any)
	obs       *serverObs
	pprofOn   bool
}

// managed is one loaded instance and its long-lived session. mu
// linearises solve batches against weight patches: the session itself
// serialises each call, but a solve handler also evaluates the
// objective of the returned X against the current instance, and that
// pairing must not interleave with a concurrent patch (the X would be
// scored under weights it was not solved for). Different instances
// still proceed fully in parallel.
type managed struct {
	ID      string
	Name    string
	Loaded  time.Time
	Agents  int
	Queries atomic.Int64

	seq  int
	sess *maxminlp.Solver
	mu   sync.Mutex
}

// maxServedRadius caps the radius (and adaptive maxRadius) a request
// may ask for. Every queried radius retains a ball index for the
// session's lifetime, and on expanding graphs a huge radius makes every
// ball the whole vertex set — O(n²) memory a single request could pin.
const maxServedRadius = 32

// maxPatchEntries caps the entries of one weight or topology patch —
// the same bound for both endpoints, so a single request cannot queue
// unbounded validation work behind an instance's linearisation lock.
const maxPatchEntries = 4096

// maxServedAgents caps the agent count an instance may reach — at load
// time (every source, not just the lattice generators) and through
// /topology addAgent growth. maxServedRows is the matching cap on the
// total resource+party row count, which /topology addEdge ops can also
// grow (an addEdge at the current row count creates the row).
const (
	maxServedAgents = 1 << 22
	maxServedRows   = 1 << 22
)

func newServer(logf func(string, ...any)) *server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &server{
		instances: make(map[string]*managed),
		started:   time.Now(),
		logf:      logf,
		obs:       newServerObs(),
	}
	s.setSlow(time.Second)
	return s
}

// handler builds the route table. Method+path patterns need Go ≥ 1.22.
// Every endpoint goes through wrap, which records the per-endpoint
// latency histogram and request counter and opens the request's trace
// span. The pprof handlers mount only when enabled (-pprof): they
// expose stacks and heap contents, which an always-on daemon should
// not serve by default.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("POST /v1/instances", s.wrap("load", s.handleLoad))
	mux.HandleFunc("GET /v1/instances", s.wrap("list", s.handleList))
	mux.HandleFunc("GET /v1/instances/{id}", s.wrap("get", s.handleGet))
	mux.HandleFunc("DELETE /v1/instances/{id}", s.wrap("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/instances/{id}/solve", s.wrap("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/instances/{id}/weights", s.wrap("weights", s.handleWeights))
	mux.HandleFunc("POST /v1/instances/{id}/topology", s.wrap("topology", s.handleTopology))
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// loadRequest describes an instance to load: exactly one source. Torus,
// Grid and Random drive the built-in generators (deterministic given
// Seed); Instance carries inline instance JSON
// ({"agents":n,"resources":[[{"Agent":..,"Coeff":..},..],..],"parties":[..]}).
type loadRequest struct {
	Name string `json:"name,omitempty"`

	Torus  *latticeSpec `json:"torus,omitempty"`
	Grid   *latticeSpec `json:"grid,omitempty"`
	Random *randomSpec  `json:"random,omitempty"`
	// Instance is inline instance JSON in the mmlp serialisation.
	Instance json.RawMessage `json:"instance,omitempty"`

	// CollaborationOblivious drops the party hyperedges from the
	// communication graph (§1.4 restricted variant).
	CollaborationOblivious bool `json:"collaborationOblivious,omitempty"`
	// Workers caps the session's solve parallelism; 0 = GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

type latticeSpec struct {
	Dims          []int `json:"dims"`
	RandomWeights bool  `json:"randomWeights,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

type randomSpec struct {
	Agents    int   `json:"agents"`
	Resources int   `json:"resources"`
	Parties   int   `json:"parties"`
	MaxVI     int   `json:"maxVI"`
	MaxVK     int   `json:"maxVK"`
	Seed      int64 `json:"seed,omitempty"`
}

func (req *loadRequest) build(panics *obs.Counter) (in *maxminlp.Instance, err error) {
	sources := 0
	for _, set := range []bool{req.Torus != nil, req.Grid != nil, req.Random != nil, len(req.Instance) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of torus, grid, random or instance must be given (got %d)", sources)
	}
	// The generators enforce their invariants by panicking (they are
	// library entry points for correct-by-construction callers); a load
	// request is untrusted input, so convert any panic into a 400 and
	// count it — the size pre-checks below exist only for what a panic
	// could not guard (allocations too large to attempt).
	defer func() {
		if r := recover(); r != nil {
			panics.Inc()
			in, err = nil, fmt.Errorf("invalid instance spec: %v", r)
		}
	}()
	switch {
	case req.Torus != nil:
		if err := checkDims(req.Torus.Dims); err != nil {
			return nil, fmt.Errorf("torus: %w", err)
		}
		in, _ := maxminlp.Torus(req.Torus.Dims, latticeOptions(req.Torus))
		return in, nil
	case req.Grid != nil:
		if err := checkDims(req.Grid.Dims); err != nil {
			return nil, fmt.Errorf("grid: %w", err)
		}
		in, _ := maxminlp.Grid(req.Grid.Dims, latticeOptions(req.Grid))
		return in, nil
	case req.Random != nil:
		r := req.Random
		if r.Agents <= 0 || r.Resources <= 0 || r.Parties < 0 {
			return nil, fmt.Errorf("random needs agents > 0, resources > 0, parties ≥ 0")
		}
		if r.Agents > maxServedAgents || r.Resources > maxServedRows || r.Parties > maxServedRows-r.Resources {
			return nil, fmt.Errorf("random instance too large to serve")
		}
		// MaxVI/MaxVK < 1 is left to the generator's own invariant panic,
		// which the recover above converts and counts.
		return maxminlp.RandomInstance(maxminlp.RandomOptions{
			Agents: r.Agents, Resources: r.Resources, Parties: r.Parties,
			MaxVI: r.MaxVI, MaxVK: r.MaxVK,
		}, rand.New(rand.NewSource(r.Seed))), nil
	default:
		in := new(maxminlp.Instance)
		if err := json.Unmarshal(req.Instance, in); err != nil {
			return nil, fmt.Errorf("instance JSON: %w", err)
		}
		return in, nil
	}
}

func checkDims(dims []int) error {
	if len(dims) == 0 {
		return fmt.Errorf("needs dims")
	}
	cells := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("dimension %d < 1", d)
		}
		if cells > maxServedAgents/d {
			return fmt.Errorf("lattice too large to serve")
		}
		cells *= d
	}
	return nil
}

func latticeOptions(spec *latticeSpec) maxminlp.LatticeOptions {
	opt := maxminlp.LatticeOptions{RandomWeights: spec.RandomWeights}
	if spec.RandomWeights {
		opt.Rng = rand.New(rand.NewSource(spec.Seed))
	}
	return opt
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	in, err := req.build(s.obs.panics)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.NumAgents() == 0 {
		httpError(w, http.StatusBadRequest, "instance has no agents")
		return
	}
	// The generator-specific checks above bound their own output; this
	// catches every source (inline JSON in particular).
	if in.NumAgents() > maxServedAgents || in.NumResources()+in.NumParties() > maxServedRows {
		s.reject(w, "instance_too_large", "instance too large to serve (%d agents, %d rows)",
			in.NumAgents(), in.NumResources()+in.NumParties())
		return
	}
	sp.Phase("validate")
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{
		CollaborationOblivious: req.CollaborationOblivious,
	})
	if req.Workers > 0 {
		sess.SetWorkers(req.Workers)
	}
	sess.SetObs(s.obs.solve)
	sp.Phase("linearise")
	s.mu.Lock()
	s.nextID++
	m := &managed{
		ID:     fmt.Sprintf("i%d", s.nextID),
		Name:   req.Name,
		Loaded: time.Now(),
		Agents: in.NumAgents(),
		seq:    s.nextID,
		sess:   sess,
	}
	s.instances[m.ID] = m
	s.obs.instances.Set(float64(len(s.instances)))
	s.mu.Unlock()
	s.logf("loaded instance %s (%q): %v", m.ID, m.Name, in.Stats())
	writeJSON(w, http.StatusCreated, s.describe(m))
	sp.Phase("encode")
}

func (s *server) lookup(r *http.Request) (*managed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.instances[r.PathValue("id")]
	return m, ok
}

// instanceInfo is the JSON description of a loaded instance.
type instanceInfo struct {
	ID        string               `json:"id"`
	Name      string               `json:"name,omitempty"`
	Loaded    time.Time            `json:"loaded"`
	Agents    int                  `json:"agents"`
	Resources int                  `json:"resources"`
	Parties   int                  `json:"parties"`
	Queries   int64                `json:"queries"`
	Session   maxminlp.SolverStats `json:"session"`
}

func (s *server) describe(m *managed) instanceInfo {
	in := m.sess.Instance()
	return instanceInfo{
		ID: m.ID, Name: m.Name, Loaded: m.Loaded,
		Agents: in.NumAgents(), Resources: in.NumResources(), Parties: in.NumParties(),
		Queries: m.Queries.Load(), Session: m.sess.Stats(),
	}
}

// sortManaged orders instances by load sequence, the order every
// listing endpoint reports.
func sortManaged(ms []*managed) {
	sort.Slice(ms, func(a, b int) bool { return ms[a].seq < ms[b].seq })
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	out := make([]instanceInfo, len(ms))
	for i, m := range ms {
		out[i] = s.describe(m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such instance")
		return
	}
	writeJSON(w, http.StatusOK, s.describe(m))
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	id := r.PathValue("id")
	_, ok := s.instances[id]
	delete(s.instances, id)
	s.obs.instances.Set(float64(len(s.instances)))
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such instance")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// solveRequest is a batch of queries against one session. Queries run in
// order; the session state they warm (ball indexes, cached LPs) persists
// for every later request.
type solveRequest struct {
	Queries []solveQuery `json:"queries"`
	// IncludeX returns the per-agent solution vector of each query.
	IncludeX bool `json:"includeX,omitempty"`
}

type solveQuery struct {
	// Kind is "safe", "average", "adaptive" or "certificate".
	Kind string `json:"kind"`
	// Radius parameterises average and certificate queries.
	Radius int `json:"radius,omitempty"`
	// Target and MaxRadius parameterise adaptive queries.
	Target    float64 `json:"target,omitempty"`
	MaxRadius int     `json:"maxRadius,omitempty"`
}

// solveResult reports one query's outcome. Omega is the objective
// min_k Σ c_kv x_v of the returned solution on the current weights.
type solveResult struct {
	Kind          string    `json:"kind"`
	Radius        int       `json:"radius,omitempty"`
	Omega         float64   `json:"omega"`
	PartyBound    float64   `json:"partyBound,omitempty"`
	ResourceBound float64   `json:"resourceBound,omitempty"`
	Certificate   float64   `json:"certificate,omitempty"`
	Achieved      *bool     `json:"achieved,omitempty"`
	LocalLPs      int       `json:"localLPs,omitempty"`
	SolvesAvoided int       `json:"solvesAvoided,omitempty"`
	Micros        int64     `json:"micros"`
	X             []float64 `json:"x,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such instance")
		return
	}
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "empty query batch")
		return
	}
	sp.Phase("validate")
	// Hold the instance lock across the whole batch: each result's
	// omega is evaluated against the weights its X was solved under,
	// and the batch observes one consistent instance even while other
	// clients patch weights (their patches apply before or after, never
	// in between).
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]solveResult, 0, len(req.Queries))
	for qi, q := range req.Queries {
		res, err := s.runQuery(m, q, req.IncludeX)
		if err != nil {
			httpError(w, http.StatusBadRequest, "query %d (%s): %v", qi, q.Kind, err)
			return
		}
		out = append(out, res)
	}
	m.Queries.Add(int64(len(req.Queries)))
	sp.Annotate(fmt.Sprintf("instance=%s queries=%d", m.ID, len(req.Queries)))
	sp.Phase("solve")
	writeJSON(w, http.StatusOK, out)
	sp.Phase("encode")
}

// runQuery executes one query; the caller holds m.mu.
func (s *server) runQuery(m *managed, q solveQuery, includeX bool) (solveResult, error) {
	in := m.sess.Instance()
	start := time.Now()
	res := solveResult{Kind: q.Kind}
	switch q.Kind {
	case "average", "certificate":
		if q.Radius > maxServedRadius {
			return res, fmt.Errorf("radius %d exceeds the serving cap %d", q.Radius, maxServedRadius)
		}
	case "adaptive":
		if q.MaxRadius > maxServedRadius {
			return res, fmt.Errorf("maxRadius %d exceeds the serving cap %d", q.MaxRadius, maxServedRadius)
		}
	}
	switch q.Kind {
	case "safe":
		x := m.sess.Safe()
		res.Omega = in.Objective(x)
		if includeX {
			res.X = x
		}
	case "average":
		avg, err := m.sess.LocalAverage(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.Omega = in.Objective(avg.X)
		res.PartyBound, res.ResourceBound = avg.PartyBound, avg.ResourceBound
		res.Certificate = avg.RatioCertificate()
		res.LocalLPs, res.SolvesAvoided = avg.LocalLPs, avg.SolvesAvoided
		if includeX {
			res.X = avg.X
		}
	case "adaptive":
		ad, err := m.sess.Adaptive(q.Target, q.MaxRadius)
		if err != nil {
			return res, err
		}
		res.Radius = ad.Radius
		res.Omega = in.Objective(ad.X)
		res.PartyBound, res.ResourceBound = ad.PartyBound, ad.ResourceBound
		res.Certificate = ad.RatioCertificate()
		res.Achieved = &ad.Achieved
		res.LocalLPs, res.SolvesAvoided = ad.LocalLPs, ad.SolvesAvoided
		if includeX {
			res.X = ad.X
		}
	case "certificate":
		pb, rb, err := m.sess.Certificate(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
	default:
		return res, fmt.Errorf("unknown kind %q (want safe, average, adaptive or certificate)", q.Kind)
	}
	res.Micros = time.Since(start).Microseconds()
	return res, nil
}

// weightsRequest patches coefficients of the instance behind a session.
// Entries must already exist: weight updates change values, never
// topology. The whole batch applies atomically.
type weightsRequest struct {
	Resources []coeffPatch `json:"resources,omitempty"`
	Parties   []coeffPatch `json:"parties,omitempty"`
}

type coeffPatch struct {
	Row   int     `json:"row"`
	Agent int     `json:"agent"`
	Coeff float64 `json:"coeff"`
}

type weightsResponse struct {
	Applied int                  `json:"applied"`
	Micros  int64                `json:"micros"`
	Session maxminlp.SolverStats `json:"session"`
}

func (s *server) handleWeights(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such instance")
		return
	}
	var req weightsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	deltas := make([]maxminlp.WeightDelta, 0, len(req.Resources)+len(req.Parties))
	for _, p := range req.Resources {
		deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.ResourceWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
	}
	for _, p := range req.Parties {
		deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.PartyWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
	}
	if len(deltas) == 0 {
		httpError(w, http.StatusBadRequest, "empty weight patch")
		return
	}
	if len(deltas) > maxPatchEntries {
		s.reject(w, "patch_entries", "patch has %d entries, cap is %d", len(deltas), maxPatchEntries)
		return
	}
	sp.Phase("validate")
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	if err := m.sess.UpdateWeights(deltas); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp.Phase("solve")
	writeJSON(w, http.StatusOK, weightsResponse{
		Applied: len(deltas),
		Micros:  time.Since(start).Microseconds(),
		Session: m.sess.Stats(),
	})
	sp.Phase("encode")
}

// topologyRequest patches the structure of the instance behind a
// session: agents, resources, parties and support entries joining or
// leaving. Ops apply in order and the whole batch is atomic — the first
// invalid op rejects it with no state change. It shares the entry cap
// and the per-instance linearisation of weight patches.
type topologyRequest struct {
	Ops []topoOpSpec `json:"ops"`
}

// topoOpSpec is one structural op. Op is "addAgent", "removeAgent",
// "addEdge" or "removeEdge"; Kind selects "resource" (default) or
// "party" for edge ops. An addEdge whose row equals the current row
// count creates the row.
type topoOpSpec struct {
	Op    string  `json:"op"`
	Kind  string  `json:"kind,omitempty"`
	Row   int     `json:"row,omitempty"`
	Agent int     `json:"agent,omitempty"`
	Coeff float64 `json:"coeff,omitempty"`
}

func (spec topoOpSpec) update() (maxminlp.TopoUpdate, error) {
	party := false
	switch spec.Kind {
	case "", "resource":
	case "party":
		party = true
	default:
		return maxminlp.TopoUpdate{}, fmt.Errorf("unknown kind %q (want resource or party)", spec.Kind)
	}
	switch spec.Op {
	case "addAgent":
		return maxminlp.AddAgent(), nil
	case "removeAgent":
		return maxminlp.RemoveAgent(spec.Agent), nil
	case "addEdge":
		if party {
			return maxminlp.AddPartyEdge(spec.Row, spec.Agent, spec.Coeff), nil
		}
		return maxminlp.AddResourceEdge(spec.Row, spec.Agent, spec.Coeff), nil
	case "removeEdge":
		if party {
			return maxminlp.RemovePartyEdge(spec.Row, spec.Agent), nil
		}
		return maxminlp.RemoveResourceEdge(spec.Row, spec.Agent), nil
	default:
		return maxminlp.TopoUpdate{}, fmt.Errorf("unknown op %q (want addAgent, removeAgent, addEdge or removeEdge)", spec.Op)
	}
}

type topologyResponse struct {
	Applied       int                  `json:"applied"`
	Agents        int                  `json:"agents"`
	AddedAgents   []int                `json:"addedAgents,omitempty"`
	RemovedAgents []int                `json:"removedAgents,omitempty"`
	Micros        int64                `json:"micros"`
	Session       maxminlp.SolverStats `json:"session"`
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such instance")
		return
	}
	var req topologyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "empty topology patch")
		return
	}
	if len(req.Ops) > maxPatchEntries {
		s.reject(w, "topo_ops", "patch has %d ops, cap is %d", len(req.Ops), maxPatchEntries)
		return
	}
	ups := make([]maxminlp.TopoUpdate, len(req.Ops))
	adds := 0
	for i, spec := range req.Ops {
		up, err := spec.update()
		if err != nil {
			httpError(w, http.StatusBadRequest, "op %d: %v", i, err)
			return
		}
		if up.Op == maxminlp.TopoAddAgent {
			adds++
		}
		ups[i] = up
	}
	// The same linearisation lock as solves and weight patches: the
	// batch applies atomically between any two solve batches.
	m.mu.Lock()
	defer m.mu.Unlock()
	in := m.sess.Instance()
	if n := in.NumAgents(); n+adds > maxServedAgents {
		s.reject(w, "agent_growth", "instance would grow to %d agents, cap is %d", n+adds, maxServedAgents)
		return
	}
	// Row growth: only an addEdge whose row is at or beyond the current
	// count of its relation can create rows, so counting those bounds
	// the batch's row growth from above.
	rowAdds := 0
	for _, up := range ups {
		if up.Op == maxminlp.TopoAddEdge &&
			((up.Party && up.Row >= in.NumParties()) || (!up.Party && up.Row >= in.NumResources())) {
			rowAdds++
		}
	}
	if rows := in.NumResources() + in.NumParties(); rows+rowAdds > maxServedRows {
		s.reject(w, "row_growth", "instance would grow to %d rows, cap is %d", rows+rowAdds, maxServedRows)
		return
	}
	sp.Phase("validate")
	start := time.Now()
	diff, err := m.sess.UpdateTopology(ups)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp.Phase("solve")
	s.logf("instance %s topology: %d ops, %d agents (+%d/-%d)",
		m.ID, len(ups), diff.NumAgents, len(diff.AddedAgents), len(diff.RemovedAgents))
	writeJSON(w, http.StatusOK, topologyResponse{
		Applied:       len(ups),
		Agents:        diff.NumAgents,
		AddedAgents:   diff.AddedAgents,
		RemovedAgents: diff.RemovedAgents,
		Micros:        time.Since(start).Microseconds(),
		Session:       m.sess.Stats(),
	})
	sp.Phase("encode")
}

type healthResponse struct {
	Status    string `json:"status"`
	Uptime    string `json:"uptime"`
	Instances int    `json:"instances"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.instances)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok", Uptime: time.Since(s.started).Round(time.Millisecond).String(), Instances: n,
	})
}

// reject refuses a request at a serving cap: 413, a Retry-After hint
// (the caps shed load; a retry with a smaller request, or against a
// less loaded deployment, can succeed), and a reason-labelled
// rejection metric so cap pressure is visible before clients complain.
func (s *server) reject(w http.ResponseWriter, reason, format string, args ...any) {
	s.obs.rejected(reason).Inc()
	w.Header().Set("Retry-After", "60")
	httpError(w, http.StatusRequestEntityTooLarge, format, args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("mmlpd: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
