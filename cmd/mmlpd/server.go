package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"maxminlp"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
	"maxminlp/internal/wal"
)

// The daemon's JSON surface is defined once, in internal/httpapi; the
// aliases keep the handlers and tests reading naturally.
type (
	loadRequest      = httpapi.LoadRequest
	latticeSpec      = httpapi.LatticeSpec
	randomSpec       = httpapi.RandomSpec
	instanceInfo     = httpapi.InstanceInfo
	listResponse     = httpapi.ListResponse
	solveRequest     = httpapi.SolveRequest
	solveQuery       = httpapi.SolveQuery
	solveResult      = httpapi.SolveResult
	weightsRequest   = httpapi.WeightsRequest
	coeffPatch       = httpapi.CoeffPatch
	weightsResponse  = httpapi.WeightsResponse
	topologyRequest  = httpapi.TopologyRequest
	topoOpSpec       = httpapi.TopoOp
	topologyResponse = httpapi.TopologyResponse
	healthResponse   = httpapi.HealthResponse
	statsResponse    = httpapi.StatsResponse
	solveStats       = httpapi.SolveStats
)

// server is the mmlpd state: one Solver session per loaded instance.
// The map is guarded by mu; each session serialises its own queries
// internally, so concurrent requests against one instance are safe and
// requests against different instances proceed in parallel.
type server struct {
	mu        sync.Mutex
	instances map[string]*managed
	nextID    int
	started   time.Time
	logf      func(format string, args ...any)
	obs       *serverObs
	pprofOn   bool

	// solveWorkers is the daemon-wide default for Solver.SetWorkers,
	// from -solve-workers; a load request's explicit workers field wins,
	// and 0 leaves the session at its GOMAXPROCS default.
	solveWorkers int

	// presolve, from -presolve, enables ball-LP presolve on every
	// session the daemon creates; the dedup-hit delta it produces shows
	// up on /metrics as mmlp_presolve_rows_dropped_total alongside the
	// mmlp_solve_cache_total series.
	presolve bool

	// cluster, when non-nil, makes this server the coordinator of a
	// worker cluster: loads and patches fan out to every worker, and
	// average/safe solves run partitioned across them. It is installed
	// via setCluster after WAL replay (the cluster seeds its patch
	// journal from the recovered instances), so handlers read it through
	// getCluster; isCoordinator is set before the routes are built and
	// gates the /v1/cluster endpoint.
	cluster       *cluster
	isCoordinator bool

	// Durability. Every committed mutation appends to the WAL before its
	// response is written — "acked ⇒ logged". commitMu orders commits
	// against snapshots: mutating handlers hold it shared across
	// apply+append+fan-out, the snapshotter holds it exclusively, so a
	// snapshot never captures a state whose log record hasn't landed.
	// Lock order: commitMu, then s.mu, then a managed's mu.
	wal        *wal.Log
	walSnap    *wal.Snapshot // staged by openWAL, consumed by replayWAL
	walRecs    []wal.Record
	walEvery   int
	commitMu   sync.RWMutex
	recovering atomic.Bool // true until replayWAL (and cluster formation) finish
}

// managed is one loaded instance and its long-lived session. mu
// linearises solve batches against weight patches: the session itself
// serialises each call, but a solve handler also evaluates the
// objective of the returned X against the current instance, and that
// pairing must not interleave with a concurrent patch (the X would be
// scored under weights it was not solved for). In cluster mode the same
// lock linearises the patch fan-out to the workers, so every replica
// applies the same patch sequence — the PR 4/5 linearisation lock,
// now spanning processes. Different instances still proceed fully in
// parallel.
type managed struct {
	ID      string
	Name    string
	Loaded  time.Time
	Agents  int
	Queries atomic.Int64

	seq  int
	sess *maxminlp.Solver
	mu   sync.Mutex

	// Load-time session options, kept verbatim so the WAL and the
	// cluster journal can rebuild an identical session elsewhere.
	oblivious bool
	workers   int
}

// maxServedRadius caps the radius (and adaptive maxRadius) a request
// may ask for. Every queried radius retains a ball index for the
// session's lifetime, and on expanding graphs a huge radius makes every
// ball the whole vertex set — O(n²) memory a single request could pin.
var maxServedRadius = 32

// maxPatchEntries caps the entries of one weight or topology patch —
// the same bound for both endpoints, so a single request cannot queue
// unbounded validation work behind an instance's linearisation lock.
var maxPatchEntries = 4096

// maxServedAgents caps the agent count an instance may reach — at load
// time (every source, not just the lattice generators) and through
// /topology addAgent growth. maxServedRows is the matching cap on the
// total resource+party row count, which /topology addEdge ops can also
// grow (an addEdge at the current row count creates the row). The caps
// are variables only so the error-path tests can lower them instead of
// building multi-million-agent instances.
var (
	maxServedAgents = 1 << 22
	maxServedRows   = 1 << 22
)

func newServer(logf func(string, ...any)) *server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &server{
		instances: make(map[string]*managed),
		started:   time.Now(),
		logf:      logf,
		obs:       newServerObs(),
	}
	s.setSlow(time.Second)
	return s
}

// handler builds the route table. Method+path patterns need Go ≥ 1.22.
// Every endpoint goes through wrap, which records the per-endpoint
// latency histogram and request counter and opens the request's trace
// span. The pprof handlers mount only when enabled (-pprof): they
// expose stacks and heap contents, which an always-on daemon should
// not serve by default.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("POST /v1/instances", s.wrap("load", s.handleLoad))
	mux.HandleFunc("GET /v1/instances", s.wrap("list", s.handleList))
	mux.HandleFunc("GET /v1/instances/{id}", s.wrap("get", s.handleGet))
	mux.HandleFunc("DELETE /v1/instances/{id}", s.wrap("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/instances/{id}/solve", s.wrap("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/instances/{id}/weights", s.wrap("weights", s.handleWeights))
	mux.HandleFunc("POST /v1/instances/{id}/topology", s.wrap("topology", s.handleTopology))
	if s.isCoordinator || s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.wrap("cluster", s.handleCluster))
	}
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// buildInstance materialises the instance a load request describes.
func buildInstance(req *loadRequest, panics *obs.Counter) (in *maxminlp.Instance, err error) {
	sources := 0
	for _, set := range []bool{req.Torus != nil, req.Grid != nil, req.Random != nil, len(req.Instance) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of torus, grid, random or instance must be given (got %d)", sources)
	}
	// The generators enforce their invariants by panicking (they are
	// library entry points for correct-by-construction callers); a load
	// request is untrusted input, so convert any panic into a 400 and
	// count it — the size pre-checks below exist only for what a panic
	// could not guard (allocations too large to attempt).
	defer func() {
		if r := recover(); r != nil {
			panics.Inc()
			in, err = nil, fmt.Errorf("invalid instance spec: %v", r)
		}
	}()
	switch {
	case req.Torus != nil:
		if err := checkDims(req.Torus.Dims); err != nil {
			return nil, fmt.Errorf("torus: %w", err)
		}
		in, _ := maxminlp.Torus(req.Torus.Dims, latticeOptions(req.Torus))
		return in, nil
	case req.Grid != nil:
		if err := checkDims(req.Grid.Dims); err != nil {
			return nil, fmt.Errorf("grid: %w", err)
		}
		in, _ := maxminlp.Grid(req.Grid.Dims, latticeOptions(req.Grid))
		return in, nil
	case req.Random != nil:
		r := req.Random
		if r.Agents <= 0 || r.Resources <= 0 || r.Parties < 0 {
			return nil, fmt.Errorf("random needs agents > 0, resources > 0, parties ≥ 0")
		}
		if r.Agents > maxServedAgents || r.Resources > maxServedRows || r.Parties > maxServedRows-r.Resources {
			return nil, fmt.Errorf("random instance too large to serve")
		}
		// MaxVI/MaxVK < 1 is left to the generator's own invariant panic,
		// which the recover above converts and counts.
		return maxminlp.RandomInstance(maxminlp.RandomOptions{
			Agents: r.Agents, Resources: r.Resources, Parties: r.Parties,
			MaxVI: r.MaxVI, MaxVK: r.MaxVK,
		}, rand.New(rand.NewSource(r.Seed))), nil
	default:
		in := new(maxminlp.Instance)
		if err := json.Unmarshal(req.Instance, in); err != nil {
			return nil, fmt.Errorf("instance JSON: %w", err)
		}
		return in, nil
	}
}

func checkDims(dims []int) error {
	if len(dims) == 0 {
		return fmt.Errorf("needs dims")
	}
	cells := 1
	for _, d := range dims {
		if d < 1 {
			return fmt.Errorf("dimension %d < 1", d)
		}
		if cells > maxServedAgents/d {
			return fmt.Errorf("lattice too large to serve")
		}
		cells *= d
	}
	return nil
}

func latticeOptions(spec *latticeSpec) maxminlp.LatticeOptions {
	opt := maxminlp.LatticeOptions{RandomWeights: spec.RandomWeights}
	if spec.RandomWeights {
		opt.Rng = rand.New(rand.NewSource(spec.Seed))
	}
	return opt
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, httpapi.CodeInvalidJSON, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	in, err := buildInstance(&req, s.obs.panics)
	if err != nil {
		apiError(w, httpapi.CodeInvalidArgument, "%v", err)
		return
	}
	if in.NumAgents() == 0 {
		apiError(w, httpapi.CodeInvalidArgument, "instance has no agents")
		return
	}
	// The generator-specific checks above bound their own output; this
	// catches every source (inline JSON in particular).
	if in.NumAgents() > maxServedAgents || in.NumResources()+in.NumParties() > maxServedRows {
		s.reject(w, httpapi.CodeInstanceTooLarge, "instance too large to serve (%d agents, %d rows)",
			in.NumAgents(), in.NumResources()+in.NumParties())
		return
	}
	sp.Phase("validate")
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{
		CollaborationOblivious: req.CollaborationOblivious,
	})
	if req.Workers > 0 {
		sess.SetWorkers(req.Workers)
	} else if s.solveWorkers > 0 {
		sess.SetWorkers(s.solveWorkers)
	}
	sess.SetObs(s.obs.solve)
	if s.presolve {
		sess.SetPresolve(true)
	}
	sp.Phase("linearise")
	raw, err := json.Marshal(in)
	if err != nil {
		apiError(w, httpapi.CodeInternal, "encoding instance: %v", err)
		return
	}
	s.commitMu.RLock()
	s.mu.Lock()
	s.nextID++
	m := &managed{
		ID:        fmt.Sprintf("i%d", s.nextID),
		Name:      req.Name,
		Loaded:    time.Now(),
		Agents:    in.NumAgents(),
		seq:       s.nextID,
		sess:      sess,
		oblivious: req.CollaborationOblivious,
		workers:   req.Workers,
	}
	s.instances[m.ID] = m
	s.obs.instances.Set(float64(len(s.instances)))
	c := s.cluster
	s.mu.Unlock()
	s.walAppend(walRecLoad, m.ID, walLoad{
		Seq: m.seq, Name: m.Name, Loaded: m.Loaded, Instance: raw,
		CollaborationOblivious: m.oblivious, Workers: m.workers,
	})
	if c != nil {
		// Replication is availability, not correctness: a dead worker is
		// healed by the readmission path, so a load succeeds regardless.
		c.replicateLoad(m.ID, raw, &req)
	}
	s.commitMu.RUnlock()
	s.maybeSnapshot()
	s.logf("loaded instance %s (%q): %v", m.ID, m.Name, in.Stats())
	writeJSON(w, http.StatusCreated, s.describe(m))
	sp.Phase("encode")
}

func (s *server) lookup(r *http.Request) (*managed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.instances[r.PathValue("id")]
	return m, ok
}

func (s *server) describe(m *managed) instanceInfo {
	in := m.sess.Instance()
	return instanceInfo{
		ID: m.ID, Name: m.Name, Loaded: m.Loaded,
		Agents: in.NumAgents(), Resources: in.NumResources(), Parties: in.NumParties(),
		Queries: m.Queries.Load(), Session: m.sess.Stats(),
		Workers: m.sess.Workers(),
	}
}

// sortManaged orders instances by load sequence — the deterministic
// order every listing endpoint reports, independent of map iteration.
func sortManaged(ms []*managed) {
	sort.Slice(ms, func(a, b int) bool { return ms[a].seq < ms[b].seq })
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	out := listResponse{SchemaVersion: httpapi.SchemaVersion, Instances: make([]instanceInfo, len(ms))}
	for i, m := range ms {
		out.Instances[i] = s.describe(m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(r)
	if !ok {
		apiError(w, httpapi.CodeNotFound, "no such instance")
		return
	}
	writeJSON(w, http.StatusOK, s.describe(m))
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.commitMu.RLock()
	s.mu.Lock()
	_, ok := s.instances[id]
	delete(s.instances, id)
	s.obs.instances.Set(float64(len(s.instances)))
	c := s.cluster
	s.mu.Unlock()
	if ok {
		s.walAppend(walRecUnload, id, nil)
		if c != nil {
			c.replicateUnload(id)
		}
	}
	s.commitMu.RUnlock()
	if !ok {
		apiError(w, httpapi.CodeNotFound, "no such instance")
		return
	}
	s.maybeSnapshot()
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		apiError(w, httpapi.CodeNotFound, "no such instance")
		return
	}
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, httpapi.CodeInvalidJSON, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	if len(req.Queries) == 0 {
		apiError(w, httpapi.CodeInvalidArgument, "empty query batch")
		return
	}
	sp.Phase("validate")
	// Hold the instance lock across the whole batch: each result's
	// omega is evaluated against the weights its X was solved under,
	// and the batch observes one consistent instance even while other
	// clients patch weights (their patches apply before or after, never
	// in between).
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]solveResult, 0, len(req.Queries))
	for qi, q := range req.Queries {
		res, err := s.runQuery(m, q, req.IncludeX)
		if err != nil {
			if apiErr, ok := err.(*httpapi.Error); ok {
				// Preserve the code AND the retry hint — a degraded
				// cluster's 503 must tell the client when to come back.
				apiErrorObj(w, &httpapi.Error{
					Code:        apiErr.Code,
					Message:     fmt.Sprintf("query %d (%s): %s", qi, q.Kind, apiErr.Message),
					RetryAfterS: apiErr.RetryAfterS,
				})
				return
			}
			apiError(w, httpapi.CodeInvalidArgument, "query %d (%s): %v", qi, q.Kind, err)
			return
		}
		out = append(out, res)
	}
	m.Queries.Add(int64(len(req.Queries)))
	sp.Annotate(fmt.Sprintf("instance=%s queries=%d", m.ID, len(req.Queries)))
	sp.Phase("solve")
	writeJSON(w, http.StatusOK, out)
	sp.Phase("encode")
}

// runQuery executes one query; the caller holds m.mu. In cluster mode,
// safe and average queries fan out to the partition owners.
func (s *server) runQuery(m *managed, q solveQuery, includeX bool) (solveResult, error) {
	in := m.sess.Instance()
	start := time.Now()
	res := solveResult{Kind: q.Kind}
	switch q.Kind {
	case "average", "certificate":
		if q.Radius > maxServedRadius {
			return res, fmt.Errorf("radius %d exceeds the serving cap %d", q.Radius, maxServedRadius)
		}
	case "adaptive":
		if q.MaxRadius > maxServedRadius {
			return res, fmt.Errorf("maxRadius %d exceeds the serving cap %d", q.MaxRadius, maxServedRadius)
		}
	}
	if c := s.getCluster(); c != nil {
		switch q.Kind {
		case "safe", "average", "adaptive":
			return c.runQuery(m, q, includeX)
		}
	}
	switch q.Kind {
	case "safe":
		x := m.sess.Safe()
		res.Omega = in.Objective(x)
		if includeX {
			res.X = x
		}
	case "average":
		avg, err := m.sess.LocalAverage(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.Omega = in.Objective(avg.X)
		res.PartyBound, res.ResourceBound = avg.PartyBound, avg.ResourceBound
		res.Certificate = avg.RatioCertificate()
		res.LocalLPs, res.SolvesAvoided = avg.LocalLPs, avg.SolvesAvoided
		if includeX {
			res.X = avg.X
		}
	case "adaptive":
		ad, err := m.sess.Adaptive(q.Target, q.MaxRadius)
		if err != nil {
			return res, err
		}
		res.Radius = ad.Radius
		res.Omega = in.Objective(ad.X)
		res.PartyBound, res.ResourceBound = ad.PartyBound, ad.ResourceBound
		res.Certificate = ad.RatioCertificate()
		res.Achieved = &ad.Achieved
		res.LocalLPs, res.SolvesAvoided = ad.LocalLPs, ad.SolvesAvoided
		if includeX {
			res.X = ad.X
		}
	case "certificate":
		pb, rb, err := m.sess.Certificate(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
	default:
		return res, fmt.Errorf("unknown kind %q (want safe, average, adaptive or certificate)", q.Kind)
	}
	res.Micros = time.Since(start).Microseconds()
	return res, nil
}

func (s *server) handleWeights(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		apiError(w, httpapi.CodeNotFound, "no such instance")
		return
	}
	var req weightsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, httpapi.CodeInvalidJSON, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	deltas := weightDeltas(&req)
	if len(deltas) == 0 {
		apiError(w, httpapi.CodeInvalidArgument, "empty weight patch")
		return
	}
	if len(deltas) > maxPatchEntries {
		s.reject(w, httpapi.CodePatchEntries, "patch has %d entries, cap is %d", len(deltas), maxPatchEntries)
		return
	}
	sp.Phase("validate")
	c := s.getCluster()
	// commitMu (shared) then the per-instance linearisation lock: the
	// apply, the WAL append and the worker fan-out happen as one commit,
	// so every replica — disk and worker — sees patches in one global
	// order. The snapshot check runs after both unlock (LIFO defers).
	defer s.maybeSnapshot()
	s.commitMu.RLock()
	defer s.commitMu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	if err := m.sess.UpdateWeights(deltas); err != nil {
		apiError(w, httpapi.CodeInvalidArgument, "%v", err)
		return
	}
	s.walAppend(walRecWeights, m.ID, &req)
	if c != nil {
		c.replicateWeights(m, &req)
	}
	sp.Phase("solve")
	writeJSON(w, http.StatusOK, weightsResponse{
		Applied: len(deltas),
		Micros:  time.Since(start).Microseconds(),
		Session: m.sess.Stats(),
	})
	sp.Phase("encode")
}

func topoUpdate(spec topoOpSpec) (maxminlp.TopoUpdate, error) {
	party := false
	switch spec.Kind {
	case "", "resource":
	case "party":
		party = true
	default:
		return maxminlp.TopoUpdate{}, fmt.Errorf("unknown kind %q (want resource or party)", spec.Kind)
	}
	switch spec.Op {
	case "addAgent":
		return maxminlp.AddAgent(), nil
	case "removeAgent":
		return maxminlp.RemoveAgent(spec.Agent), nil
	case "addEdge":
		if party {
			return maxminlp.AddPartyEdge(spec.Row, spec.Agent, spec.Coeff), nil
		}
		return maxminlp.AddResourceEdge(spec.Row, spec.Agent, spec.Coeff), nil
	case "removeEdge":
		if party {
			return maxminlp.RemovePartyEdge(spec.Row, spec.Agent), nil
		}
		return maxminlp.RemoveResourceEdge(spec.Row, spec.Agent), nil
	default:
		return maxminlp.TopoUpdate{}, fmt.Errorf("unknown op %q (want addAgent, removeAgent, addEdge or removeEdge)", spec.Op)
	}
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	sp := spanOf(r)
	m, ok := s.lookup(r)
	if !ok {
		apiError(w, httpapi.CodeNotFound, "no such instance")
		return
	}
	var req topologyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, httpapi.CodeInvalidJSON, "request JSON: %v", err)
		return
	}
	sp.Phase("load")
	if len(req.Ops) == 0 {
		apiError(w, httpapi.CodeInvalidArgument, "empty topology patch")
		return
	}
	if len(req.Ops) > maxPatchEntries {
		s.reject(w, httpapi.CodeTopoOps, "patch has %d ops, cap is %d", len(req.Ops), maxPatchEntries)
		return
	}
	ups := make([]maxminlp.TopoUpdate, len(req.Ops))
	adds := 0
	for i, spec := range req.Ops {
		up, err := topoUpdate(spec)
		if err != nil {
			apiError(w, httpapi.CodeInvalidArgument, "op %d: %v", i, err)
			return
		}
		if up.Op == maxminlp.TopoAddAgent {
			adds++
		}
		ups[i] = up
	}
	// The same linearisation lock as solves and weight patches: the
	// batch applies atomically between any two solve batches. commitMu
	// (shared) makes the apply + WAL append + fan-out one commit.
	c := s.getCluster()
	defer s.maybeSnapshot()
	s.commitMu.RLock()
	defer s.commitMu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	in := m.sess.Instance()
	if n := in.NumAgents(); n+adds > maxServedAgents {
		s.reject(w, httpapi.CodeAgentGrowth, "instance would grow to %d agents, cap is %d", n+adds, maxServedAgents)
		return
	}
	// Row growth: only an addEdge whose row is at or beyond the current
	// count of its relation can create rows, so counting those bounds
	// the batch's row growth from above.
	rowAdds := 0
	for _, up := range ups {
		if up.Op == maxminlp.TopoAddEdge &&
			((up.Party && up.Row >= in.NumParties()) || (!up.Party && up.Row >= in.NumResources())) {
			rowAdds++
		}
	}
	if rows := in.NumResources() + in.NumParties(); rows+rowAdds > maxServedRows {
		s.reject(w, httpapi.CodeRowGrowth, "instance would grow to %d rows, cap is %d", rows+rowAdds, maxServedRows)
		return
	}
	sp.Phase("validate")
	start := time.Now()
	diff, err := m.sess.UpdateTopology(ups)
	if err != nil {
		apiError(w, httpapi.CodeInvalidArgument, "%v", err)
		return
	}
	s.walAppend(walRecTopology, m.ID, &req)
	if c != nil {
		c.replicateTopology(m, &req)
	}
	sp.Phase("solve")
	s.logf("instance %s topology: %d ops, %d agents (+%d/-%d)",
		m.ID, len(ups), diff.NumAgents, len(diff.AddedAgents), len(diff.RemovedAgents))
	writeJSON(w, http.StatusOK, topologyResponse{
		Applied:       len(ups),
		Agents:        diff.NumAgents,
		AddedAgents:   diff.AddedAgents,
		RemovedAgents: diff.RemovedAgents,
		Micros:        time.Since(start).Microseconds(),
		Session:       m.sess.Stats(),
	})
	sp.Phase("encode")
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.instances)
	c := s.cluster
	s.mu.Unlock()
	resp := healthResponse{
		Status: "ok", Uptime: time.Since(s.started).Round(time.Millisecond).String(), Instances: n,
	}
	if s.recovering.Load() {
		resp.Status = "recovering"
	}
	if c != nil {
		resp.Role = "coordinator"
		resp.Workers = c.liveWorkers()
	} else if s.isCoordinator {
		resp.Role = "coordinator"
	}
	writeJSON(w, http.StatusOK, resp)
}

// reject refuses a request at a serving cap: 413, a Retry-After hint
// (the caps shed load; a retry with a smaller request, or against a
// less loaded deployment, can succeed), and a code-labelled rejection
// metric so cap pressure is visible before clients complain.
func (s *server) reject(w http.ResponseWriter, code, format string, args ...any) {
	s.obs.rejected(code).Inc()
	w.Header().Set("Retry-After", "60")
	writeJSON(w, httpapi.Status(code), httpapi.ErrorEnvelope{Error: &httpapi.Error{
		Code: code, Message: fmt.Sprintf(format, args...), RetryAfterS: 60,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("mmlpd: encode response: %v", err)
	}
}

// apiError writes the structured error envelope
// {"error":{"code","message","retry_after_s"}}; the status derives from
// the machine-readable code.
func apiError(w http.ResponseWriter, code, format string, args ...any) {
	writeJSON(w, httpapi.Status(code), httpapi.ErrorEnvelope{Error: &httpapi.Error{
		Code: code, Message: fmt.Sprintf(format, args...),
	}})
}

// apiErrorObj writes a pre-built error, preserving its retry hint in
// both the envelope and the Retry-After header — degraded and
// recovering responses always carry the structured envelope, never a
// bare status.
func apiErrorObj(w http.ResponseWriter, e *httpapi.Error) {
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterS))
	}
	writeJSON(w, httpapi.Status(e.Code), httpapi.ErrorEnvelope{Error: e})
}

// getCluster reads the cluster pointer race-free; it is nil until the
// boot sequence installs it with setCluster.
func (s *server) getCluster() *cluster {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

func (s *server) setCluster(c *cluster) {
	s.mu.Lock()
	s.cluster = c
	s.mu.Unlock()
}
