package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"maxminlp"
	"maxminlp/internal/httpapi"
)

// TestDaemonTopology drives the structural-churn serving path: an
// atomic /topology patch (join + leave in one batch), an incremental
// re-solve served bit-identical to the library's cold computation on
// the mutated instance, churn counters in the session stats, and zero
// structure rebuilds in steady state.
func TestDaemonTopology(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Name:  "churn",
		Torus: &latticeSpec{Dims: []int{8, 8}},
	}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID

	// Warm the session at R=1.
	var results []solveResult
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "average", Radius: 1}},
	}, http.StatusOK, &results)
	var warm instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &warm)

	// One atomic churn batch: agent 64 joins (resource 0, party 5),
	// agent 9 leaves, and agent 3 leaves resource 2.
	ops := []topoOpSpec{
		{Op: "addAgent"},
		{Op: "addEdge", Row: 0, Agent: 64, Coeff: 1.5},
		{Op: "addEdge", Kind: "party", Row: 5, Agent: 64, Coeff: 0.5},
		{Op: "removeAgent", Agent: 9},
		{Op: "removeEdge", Row: 2, Agent: 3},
	}
	var tresp topologyResponse
	do(t, ts, "POST", base+"/topology", topologyRequest{Ops: ops}, http.StatusOK, &tresp)
	if tresp.Applied != 5 || tresp.Agents != 65 {
		t.Fatalf("topology response %+v, want applied=5 agents=65", tresp)
	}
	if len(tresp.AddedAgents) != 1 || tresp.AddedAgents[0] != 64 ||
		len(tresp.RemovedAgents) != 1 || tresp.RemovedAgents[0] != 9 {
		t.Fatalf("added/removed = %v/%v", tresp.AddedAgents, tresp.RemovedAgents)
	}
	if tresp.Session.TopoUpdates != 1 || tresp.Session.TopoOpsApplied != 5 ||
		tresp.Session.AgentsAdded != 1 || tresp.Session.AgentsRemoved != 1 {
		t.Fatalf("churn counters missing from stats: %+v", tresp.Session)
	}

	// The incremental re-solve must serve the mutated instance bit-exactly.
	do(t, ts, "POST", base+"/solve", solveRequest{
		IncludeX: true,
		Queries:  []solveQuery{{Kind: "average", Radius: 1}},
	}, http.StatusOK, &results)
	in, _ := maxminlp.Torus([]int{8, 8}, maxminlp.LatticeOptions{})
	mirror, _, err := in.ApplyTopo([]maxminlp.TopoUpdate{
		maxminlp.AddAgent(),
		maxminlp.AddResourceEdge(0, 64, 1.5),
		maxminlp.AddPartyEdge(5, 64, 0.5),
		maxminlp.RemoveAgent(9),
		maxminlp.RemoveResourceEdge(2, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := maxminlp.LocalAverage(mirror, maxminlp.NewGraph(mirror, maxminlp.GraphOptions{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].X) != 65 {
		t.Fatalf("served %d activities, want 65", len(results[0].X))
	}
	for v := range ref.X {
		if results[0].X[v] != ref.X[v] {
			t.Fatalf("post-churn X[%d] = %v, want %v", v, results[0].X[v], ref.X[v])
		}
	}

	// Steady state: the churn patched structures instead of rebuilding.
	var final instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &final)
	if final.Session.CSRBuilds != warm.Session.CSRBuilds ||
		final.Session.BallIndexBuilds != warm.Session.BallIndexBuilds {
		t.Errorf("churn rebuilt structures: %+v -> %+v", warm.Session, final.Session)
	}
	if final.Session.BallsPatched == 0 {
		t.Error("no balls patched recorded in stats")
	}
	if final.Agents != 65 {
		t.Errorf("instance description reports %d agents, want 65", final.Agents)
	}
}

// TestDaemonTopologyErrors covers the validation and cap paths of the
// /topology endpoint: atomic rejection, unknown ops, dead-entry
// references, oversized patches and the agent-growth cap.
func TestDaemonTopologyErrors(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{4, 4}}}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID

	var errResp httpapi.ErrorEnvelope
	do(t, ts, "POST", "/v1/instances/nope/topology", topologyRequest{Ops: []topoOpSpec{{Op: "addAgent"}}}, http.StatusNotFound, &errResp)
	do(t, ts, "POST", base+"/topology", topologyRequest{}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/topology", topologyRequest{Ops: []topoOpSpec{{Op: "merge"}}}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/topology", topologyRequest{Ops: []topoOpSpec{{Op: "addEdge", Kind: "edge", Row: 0, Agent: 1, Coeff: 1}}}, http.StatusBadRequest, &errResp)
	// Batch with a second invalid op: atomic — nothing applies.
	do(t, ts, "POST", base+"/topology", topologyRequest{Ops: []topoOpSpec{
		{Op: "addAgent"},
		{Op: "removeEdge", Row: 99, Agent: 0},
	}}, http.StatusBadRequest, &errResp)
	var after instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &after)
	if after.Agents != 16 || after.Session.TopoUpdates != 0 {
		t.Fatalf("rejected batch left state: %+v", after)
	}
	// Oversized patches are rejected on both patch endpoints.
	big := make([]topoOpSpec, maxPatchEntries+1)
	for i := range big {
		big[i] = topoOpSpec{Op: "addAgent"}
	}
	do(t, ts, "POST", base+"/topology", topologyRequest{Ops: big}, http.StatusRequestEntityTooLarge, &errResp)
	bigW := weightsRequest{Resources: make([]coeffPatch, maxPatchEntries+1)}
	for i := range bigW.Resources {
		bigW.Resources[i] = coeffPatch{Row: 0, Agent: 0, Coeff: 1}
	}
	do(t, ts, "POST", base+"/weights", bigW, http.StatusRequestEntityTooLarge, &errResp)
	// The agent cap holds for every load source, not just lattices.
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Random: &randomSpec{Agents: maxServedAgents + 1, Resources: 1, Parties: 0, MaxVI: 1, MaxVK: 1},
	}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Random: &randomSpec{Agents: 10, Resources: maxServedRows + 1, Parties: 0, MaxVI: 1, MaxVK: 1},
	}, http.StatusBadRequest, &errResp)
}

// TestDaemonChurnHammer is the serving-layer race hammer: concurrent
// solve, weight-patch and topology-patch clients against one instance
// (run under -race in CI). The patch clients operate on disjoint rows,
// so their op sequences commute: every state the server can pass
// through is a combination of per-client prefixes, and every solve
// response must match one of them bit-for-bit — the linearisation
// property. The final state must equal the library's cold solve of all
// ops applied.
func TestDaemonChurnHammer(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{6, 6}}}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID
	in, _ := maxminlp.Torus([]int{6, 6}, maxminlp.LatticeOptions{})

	// Client op scripts. Topology clients toggle one private edge
	// (remove, re-add with a new coefficient, …); the weight client
	// re-weights one private entry. All rows are distinct, so any
	// interleaving of whole ops yields a state described by the three
	// prefix lengths alone.
	const iters = 4
	topoOps := func(row int) []topoOpSpec {
		agent := in.Resource(row)[0].Agent
		ops := make([]topoOpSpec, iters)
		for i := range ops {
			if i%2 == 0 {
				ops[i] = topoOpSpec{Op: "removeEdge", Row: row, Agent: agent}
			} else {
				ops[i] = topoOpSpec{Op: "addEdge", Row: row, Agent: agent, Coeff: 1.5 + float64(i)}
			}
		}
		return ops
	}
	scripts := [][]topoOpSpec{topoOps(2), topoOps(17)}
	weightCoeffs := make([]float64, iters)
	weightAgent := in.Resource(30)[0].Agent
	for i := range weightCoeffs {
		weightCoeffs[i] = 0.5 + float64(i)/4
	}

	type captured struct{ x []float64 }
	results := make(chan captured, 64)
	done := make(chan error, 5)
	for c := 0; c < 2; c++ {
		go func(script []topoOpSpec) {
			for _, op := range script {
				if err := post(ts, base+"/topology", topologyRequest{Ops: []topoOpSpec{op}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(scripts[c])
	}
	go func() {
		for _, coeff := range weightCoeffs {
			if err := post(ts, base+"/weights", weightsRequest{
				Resources: []coeffPatch{{Row: 30, Agent: weightAgent, Coeff: coeff}},
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for c := 0; c < 2; c++ {
		go func() {
			for iter := 0; iter < 5; iter++ {
				var out []solveResult
				if err := doJSON(ts, base+"/solve", solveRequest{
					IncludeX: true,
					Queries:  []solveQuery{{Kind: "average", Radius: 1}},
				}, &out); err != nil {
					done <- err
					return
				}
				results <- captured{x: out[0].X}
			}
			done <- nil
		}()
	}
	for c := 0; c < 5; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	close(results)

	// Enumerate reachable states lazily: state (a, b, w) = clients'
	// prefix lengths; cold-solve each on demand and match captures.
	type key [3]int
	refs := make(map[key][]float64)
	coldX := func(k key) []float64 {
		if x, ok := refs[k]; ok {
			return x
		}
		var ups []maxminlp.TopoUpdate
		for ci, pre := range []int{k[0], k[1]} {
			for _, op := range scripts[ci][:pre] {
				up, err := topoUpdate(op)
				if err != nil {
					t.Fatal(err)
				}
				ups = append(ups, up)
			}
		}
		state, _, err := in.ApplyTopo(ups)
		if err != nil {
			t.Fatal(err)
		}
		if k[2] > 0 {
			state, err = state.UpdateCoeffs([]maxminlp.CoeffUpdate{
				{Row: 30, Agent: weightAgent, Coeff: weightCoeffs[k[2]-1]},
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		ref, err := maxminlp.LocalAverage(state, maxminlp.NewGraph(state, maxminlp.GraphOptions{}), 1)
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = ref.X
		return ref.X
	}
	sameX := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ci := 0
	for cap := range results {
		ci++
		matched := false
	search:
		for a := 0; a <= iters; a++ {
			for b := 0; b <= iters; b++ {
				for w := 0; w <= iters; w++ {
					if sameX(cap.x, coldX(key{a, b, w})) {
						matched = true
						break search
					}
				}
			}
		}
		if !matched {
			t.Fatalf("solve response %d matches no linearised state", ci)
		}
	}

	// Final state: everything applied.
	var out []solveResult
	if err := doJSON(ts, base+"/solve", solveRequest{
		IncludeX: true,
		Queries:  []solveQuery{{Kind: "average", Radius: 1}},
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !sameX(out[0].X, coldX(key{iters, iters, iters})) {
		t.Fatal("final served state does not match all ops applied")
	}
}

// doJSON posts a body and decodes a 2xx JSON response into out.
func doJSON(ts *httptest.Server, path string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, msg.String())
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
