package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"maxminlp"
	"maxminlp/internal/dist"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/wire"
)

// cluster is the coordinator's view of its workers. Control-plane RPCs
// (load, patch, snapshot) go point-to-point over each worker's control
// connection; data-plane solves fan out to every worker at once, which
// then exchange boundary state among themselves over their own TCP mesh
// while the coordinator only gathers the partial results.
type cluster struct {
	workers []*workerLink
	logf    func(format string, args ...any)

	// dataMu serialises cluster-wide partitioned solves. The workers share
	// one long-lived round-exchange mesh, and the mesh's correctness rests
	// on every member running the same rounds in the same order — so at
	// most one partitioned run may be in flight across all instances.
	dataMu sync.Mutex
}

// workerLink is one worker's control connection. mu makes call (one
// request frame, one reply frame) atomic; the per-instance linearisation
// lock above it decides the order in which calls happen.
type workerLink struct {
	peer     int
	dataAddr string
	conn     net.Conn
	mu       sync.Mutex
}

// call performs one control RPC. A wire.Error reply surfaces as a
// *httpapi.Error carrying the worker's machine-readable code.
func (l *workerLink) call(typ string, body any) (*wire.Envelope, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := wire.WriteMsg(l.conn, typ, body); err != nil {
		return nil, fmt.Errorf("worker %d: send %s: %w", l.peer, typ, err)
	}
	env, err := wire.ReadMsg(l.conn)
	if err != nil {
		return nil, fmt.Errorf("worker %d: %s reply: %w", l.peer, typ, err)
	}
	if env.Type == wire.TypeError {
		var we wire.Error
		if err := env.Decode(&we); err != nil {
			return nil, fmt.Errorf("worker %d: malformed error reply: %w", l.peer, err)
		}
		return nil, &httpapi.Error{Code: we.Code, Message: fmt.Sprintf("worker %d: %s", l.peer, we.Message)}
	}
	return env, nil
}

// newCluster forms a cluster: accept exactly n workers on the control
// listener, then assign each its partition index and the full data-plane
// address list. Workers build their round-exchange mesh on assignment
// and acknowledge; the cluster is ready once every ack is in.
func newCluster(ln net.Listener, n int, logf func(string, ...any)) (*cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster needs at least 1 worker, got %d", n)
	}
	c := &cluster{logf: logf}
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("accepting worker %d: %w", i, err)
		}
		env, err := wire.ReadMsg(conn)
		if err != nil {
			return nil, fmt.Errorf("worker %d hello: %w", i, err)
		}
		if env.Type != wire.TypeHello {
			return nil, fmt.Errorf("worker %d: expected %s, got %s", i, wire.TypeHello, env.Type)
		}
		var h wire.Hello
		if err := env.Decode(&h); err != nil {
			return nil, fmt.Errorf("worker %d hello: %w", i, err)
		}
		c.workers = append(c.workers, &workerLink{peer: i, dataAddr: h.DataAddr, conn: conn})
		logf("mmlpd: worker %d joined (data plane %s)", i, h.DataAddr)
	}
	peers := make([]string, n)
	for i, l := range c.workers {
		peers[i] = l.dataAddr
	}
	// Send every assignment before waiting for any ack: the workers dial
	// each other to build the mesh, so all of them must know the roster
	// before the first can finish.
	for i, l := range c.workers {
		if err := wire.WriteMsg(l.conn, wire.TypeAssign, &wire.Assign{Self: i, Peers: peers}); err != nil {
			return nil, fmt.Errorf("assigning worker %d: %w", i, err)
		}
	}
	for i, l := range c.workers {
		env, err := wire.ReadMsg(l.conn)
		if err != nil {
			return nil, fmt.Errorf("worker %d mesh ack: %w", i, err)
		}
		if env.Type != wire.TypeOK {
			return nil, fmt.Errorf("worker %d: mesh build failed (%s)", i, env.Type)
		}
	}
	logf("mmlpd: cluster formed with %d workers", n)
	return c, nil
}

// fanout runs one RPC against every worker concurrently and collects
// the replies in peer order.
func (c *cluster) fanout(fn func(l *workerLink) (*wire.Envelope, error)) ([]*wire.Envelope, error) {
	envs := make([]*wire.Envelope, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, l := range c.workers {
		wg.Add(1)
		go func(i int, l *workerLink) {
			defer wg.Done()
			envs[i], errs[i] = fn(l)
		}(i, l)
	}
	wg.Wait()
	return envs, errors.Join(errs...)
}

// replicateLoad ships a freshly loaded instance to every worker. The
// instance travels as its canonical JSON encoding, which round-trips
// float64 coefficients exactly — the replicas are bit-identical.
func (c *cluster) replicateLoad(id string, in *maxminlp.Instance, req *loadRequest) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	msg := &wire.Load{
		ID: id, Instance: b,
		CollaborationOblivious: req.CollaborationOblivious,
		Workers:                req.Workers,
	}
	_, err = c.fanout(func(l *workerLink) (*wire.Envelope, error) {
		return l.call(wire.TypeLoad, msg)
	})
	return err
}

// replicateUnload drops the replicas. Best-effort: the coordinator has
// already forgotten the instance, so a failure only logs.
func (c *cluster) replicateUnload(id string) {
	if _, err := c.fanout(func(l *workerLink) (*wire.Envelope, error) {
		return l.call(wire.TypeUnload, &wire.Unload{ID: id})
	}); err != nil {
		c.logf("mmlpd: unload %s: %v", id, err)
	}
}

func wireCoeffs(ps []coeffPatch) []wire.Coeff {
	out := make([]wire.Coeff, len(ps))
	for i, p := range ps {
		out[i] = wire.Coeff{Row: p.Row, Agent: p.Agent, Coeff: p.Coeff}
	}
	return out
}

// replicateWeights fans one applied weight patch to every replica. The
// caller holds the instance's linearisation lock, so every replica sees
// the same patch sequence the coordinator applied.
func (c *cluster) replicateWeights(id string, req *weightsRequest) error {
	msg := &wire.Weights{ID: id, Resources: wireCoeffs(req.Resources), Parties: wireCoeffs(req.Parties)}
	_, err := c.fanout(func(l *workerLink) (*wire.Envelope, error) {
		return l.call(wire.TypeWeights, msg)
	})
	return err
}

// replicateTopology fans one applied structural patch to every replica.
func (c *cluster) replicateTopology(id string, req *topologyRequest) error {
	ops := make([]wire.TopoOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = wire.TopoOp{Op: op.Op, Kind: op.Kind, Row: op.Row, Agent: op.Agent, Coeff: op.Coeff}
	}
	msg := &wire.Topology{ID: id, Ops: ops}
	_, err := c.fanout(func(l *workerLink) (*wire.Envelope, error) {
		return l.call(wire.TypeTopology, msg)
	})
	return err
}

// gather fans one solve to every worker and assembles the full solution
// vector from the partition slices. Any worker failure degrades the
// whole query to a cluster error.
func (c *cluster) gather(id, kind string, radius, n int) ([]float64, error) {
	c.dataMu.Lock()
	defer c.dataMu.Unlock()
	envs, err := c.fanout(func(l *workerLink) (*wire.Envelope, error) {
		return l.call(wire.TypeSolve, &wire.Solve{ID: id, Kind: kind, Radius: radius})
	})
	if err != nil {
		return nil, &httpapi.Error{Code: httpapi.CodeCluster, Message: err.Error()}
	}
	x := make([]float64, n)
	members := len(c.workers)
	for i, env := range envs {
		if env.Type != wire.TypePartial {
			return nil, &httpapi.Error{Code: httpapi.CodeCluster,
				Message: fmt.Sprintf("worker %d: expected %s, got %s", i, wire.TypePartial, env.Type)}
		}
		var p wire.Partial
		if err := env.Decode(&p); err != nil {
			return nil, &httpapi.Error{Code: httpapi.CodeCluster, Message: fmt.Sprintf("worker %d: %v", i, err)}
		}
		lo, hi := (dist.Partition{Self: i, Members: members}).Bounds(n)
		if p.Lo != lo || p.Hi != hi || len(p.X) != hi-lo {
			return nil, &httpapi.Error{Code: httpapi.CodeCluster,
				Message: fmt.Sprintf("worker %d returned slice [%d,%d) with %d outputs, want [%d,%d)",
					i, p.Lo, p.Hi, len(p.X), lo, hi)}
		}
		copy(x[lo:hi], p.X)
	}
	return x, nil
}

// runQuery executes one solve query across the cluster: the workers
// compute the partition slices of X (exchanging only R-hop boundary
// state among themselves) and the coordinator derives the certificate
// bounds from its own replica — bit-identical to the single-process
// session path, which the cluster tests pin. The caller holds m.mu.
func (c *cluster) runQuery(m *managed, q solveQuery, includeX bool) (solveResult, error) {
	in := m.sess.Instance()
	n := in.NumAgents()
	start := time.Now()
	res := solveResult{Kind: q.Kind}
	switch q.Kind {
	case "safe":
		x, err := c.gather(m.ID, "safe", 0, n)
		if err != nil {
			return res, err
		}
		res.Omega = in.Objective(x)
		if includeX {
			res.X = x
		}
	case "average":
		x, err := c.gather(m.ID, "average", q.Radius, n)
		if err != nil {
			return res, err
		}
		pb, rb, err := m.sess.Certificate(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.Omega = in.Objective(x)
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
		if includeX {
			res.X = x
		}
	case "adaptive":
		// The radius search is pure ball structure, so it runs on the
		// coordinator's replica — the same loop as Solver.Adaptive — and
		// only the final averaging solve fans out.
		if q.Target <= 1 {
			return res, fmt.Errorf("target ratio must exceed 1, got %v", q.Target)
		}
		if q.MaxRadius < 1 {
			return res, fmt.Errorf("maxRadius must be ≥ 1, got %d", q.MaxRadius)
		}
		chosen, achieved := q.MaxRadius, false
		for r := 1; r <= q.MaxRadius; r++ {
			pb, rb, err := m.sess.Certificate(r)
			if err != nil {
				return res, err
			}
			if pb*rb <= q.Target {
				chosen, achieved = r, true
				break
			}
		}
		x, err := c.gather(m.ID, "average", chosen, n)
		if err != nil {
			return res, err
		}
		pb, rb, err := m.sess.Certificate(chosen)
		if err != nil {
			return res, err
		}
		res.Radius = chosen
		res.Omega = in.Objective(x)
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
		res.Achieved = &achieved
		if includeX {
			res.X = x
		}
	default:
		return res, fmt.Errorf("unknown kind %q", q.Kind)
	}
	res.Micros = time.Since(start).Microseconds()
	return res, nil
}

// instanceDigest fingerprints an instance's canonical JSON encoding.
// Coordinator and workers compute it over their own replicas; equal
// digests certify the patch streams applied identically.
func instanceDigest(in *maxminlp.Instance) string {
	b, err := json.Marshal(in)
	if err != nil {
		return "unencodable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// handleCluster is GET /v1/cluster: membership plus a per-instance
// digest snapshot. Each instance's digests are gathered under its
// linearisation lock, so the view is consistent — no patch can land
// between the coordinator's digest and the workers'.
func (s *server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	c := s.cluster
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	resp := httpapi.ClusterResponse{
		SchemaVersion: httpapi.SchemaVersion,
		Workers:       make([]httpapi.ClusterWorker, len(c.workers)),
		Instances:     make([]httpapi.ClusterInstance, 0, len(ms)),
	}
	for i, l := range c.workers {
		resp.Workers[i] = httpapi.ClusterWorker{Peer: l.peer, DataAddr: l.dataAddr}
	}
	for _, m := range ms {
		m.mu.Lock()
		in := m.sess.Instance()
		ci := httpapi.ClusterInstance{
			ID: m.ID, Agents: in.NumAgents(),
			Coordinator: instanceDigest(in),
			InSync:      true,
		}
		envs, err := c.fanout(func(l *workerLink) (*wire.Envelope, error) {
			return l.call(wire.TypeSnapshot, &wire.Snapshot{ID: m.ID})
		})
		m.mu.Unlock()
		if err != nil {
			apiError(w, httpapi.CodeCluster, "snapshot of %s: %v", m.ID, err)
			return
		}
		for i, env := range envs {
			var st wire.State
			if env.Type != wire.TypeState {
				apiError(w, httpapi.CodeCluster, "snapshot of %s: worker %d replied %s", m.ID, i, env.Type)
				return
			}
			if err := env.Decode(&st); err != nil {
				apiError(w, httpapi.CodeCluster, "snapshot of %s: worker %d: %v", m.ID, i, err)
				return
			}
			ci.Workers = append(ci.Workers, st.Digest)
			if st.Digest != ci.Coordinator {
				ci.InSync = false
			}
		}
		resp.Instances = append(resp.Instances, ci)
	}
	writeJSON(w, http.StatusOK, resp)
}
