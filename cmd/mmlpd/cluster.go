package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"maxminlp"
	"maxminlp/internal/backoff"
	"maxminlp/internal/dist"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
	"maxminlp/internal/wire"
)

// cluster is the coordinator's view of its workers. Control-plane RPCs
// (load, patch, snapshot) go point-to-point over each worker's control
// connection; data-plane solves fan out to every worker at once, which
// then exchange boundary state among themselves over their own TCP mesh
// while the coordinator only gathers the partial results.
//
// Membership is dynamic: workers join (and rejoin after a crash)
// through a persistent accept loop, dead workers are detected by RPC
// deadlines and heartbeat timeouts and dropped, and every membership
// change bumps the epoch and re-Assigns the survivors so the mesh and
// the partition bounds always agree. While the cluster holds fewer
// workers than its target it serves solves degraded — or, with zero
// workers, refuses them with an explicit `cluster/degraded` envelope —
// but it never silently serves stale state.
type cluster struct {
	logf   func(format string, args ...any)
	target int
	ln     net.Listener

	rpcTimeout   time.Duration // short control RPCs (patches, snapshots, pings)
	longTimeout  time.Duration // solves, loads, mesh builds, resync self-checks
	hbInterval   time.Duration // heartbeat period; 0 disables
	hbMisses     int           // consecutive misses before a worker is declared dead
	resyncRadius int           // stabilising self-check radius at readmission

	// dataMu freezes membership and serialises cluster-wide partitioned
	// solves: the workers share one long-lived round-exchange mesh whose
	// correctness rests on every member running the same rounds in the
	// same order, so at most one partitioned run may be in flight — and
	// no admission or removal may happen under it.
	dataMu sync.Mutex

	// mu guards workers and epoch. Fan-out paths (patches, snapshots,
	// heartbeats) hold it shared so they never race a membership change;
	// admissions and removals hold it exclusively (always under dataMu).
	mu      sync.RWMutex
	workers []*workerLink
	epoch   uint64

	formed     chan struct{} // closed when the worker count first reaches target
	formOnce   sync.Once
	everFormed atomic.Bool
	closed     atomic.Bool

	// journal is the coordinator's per-instance patch log: the exact
	// wire bodies it fanned out, each stamped with the replica digest
	// after applying it. A rejoining worker reports its digests and the
	// coordinator replays only the suffix it is missing (or unloads and
	// replays from the load when the digest is unknown). jmu is a leaf
	// lock: nothing is acquired under it.
	jmu     sync.Mutex
	journal map[string]*instanceLog

	reconnects *obs.Counter // post-formation readmissions (nil-safe)
	inSync     *obs.Gauge   // workers currently admitted and in sync (nil-safe)
}

// clusterConfig is newCluster's knobs; zero values pick the defaults.
type clusterConfig struct {
	target       int
	rpcTimeout   time.Duration // default 5s
	longTimeout  time.Duration // default 60s
	hbInterval   time.Duration // default 1s; negative disables
	hbMisses     int           // default 3
	formTimeout  time.Duration // default 30s; how long to wait for the target before serving degraded
	resyncRadius int           // default 1

	// seed pre-populates the patch journal with already-loaded instances
	// (the coordinator replayed them from its WAL before forming the
	// cluster), so the first workers to join catch up like rejoiners.
	seed []wire.Load

	reconnects *obs.Counter
	inSync     *obs.Gauge
}

// journalEntry is one logged control message: the exact body shipped to
// the workers plus the replica digest after applying it.
type journalEntry struct {
	typ    string
	body   json.RawMessage
	digest string
}

type instanceLog struct {
	entries []journalEntry // entries[0] is always a load
}

// journalCompactAfter bounds a patch log's length: past it the log is
// folded into a single synthetic load of the current instance state, so
// catch-up cost is O(instance), not O(history).
const journalCompactAfter = 64

// workerLink is one worker's control connection. mu makes call (one
// request frame, one reply frame) atomic; the per-instance linearisation
// lock above it decides the order in which calls happen.
type workerLink struct {
	peer     atomic.Int32 // partition index; rewritten by reassign while RPCs are in flight
	dataAddr string
	conn     net.Conn
	mu       sync.Mutex
	seq      uint64       // last RPC sequence number issued on this link
	misses   atomic.Int32 // consecutive heartbeat failures
}

// call performs one control RPC with a deadline. A wire.Error reply
// surfaces as a *httpapi.Error carrying the worker's machine-readable
// code; any transport failure (including the deadline) is returned as a
// plain error, which the caller treats as the worker being gone.
func (l *workerLink) call(typ string, body any, timeout time.Duration) (*wire.Envelope, error) {
	return l.callRetry(typ, body, timeout, 1)
}

// callRetry is call with bounded retries under jittered exponential
// backoff. Retries reuse the same sequence number, and the worker
// suppresses duplicate sequence numbers by resending its cached reply —
// so retrying a non-idempotent patch cannot double-apply it.
func (l *workerLink) callRetry(typ string, body any, timeout time.Duration, attempts int) (*wire.Envelope, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	seq := l.seq
	bo := backoff.New(backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Attempts: attempts - 1},
		time.Now().UnixNano())
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && !bo.Next() {
			break
		}
		env, err := l.once(typ, seq, body, timeout)
		if err == nil {
			return l.decodeReply(env)
		}
		lastErr = err
	}
	return nil, lastErr
}

// once writes one request frame and reads replies until the one with
// the matching sequence number arrives — a stale reply to an RPC whose
// deadline fired earlier is discarded, never mistaken for the answer.
func (l *workerLink) once(typ string, seq uint64, body any, timeout time.Duration) (*wire.Envelope, error) {
	deadline := time.Now().Add(timeout)
	l.conn.SetDeadline(deadline)
	defer l.conn.SetDeadline(time.Time{})
	if err := wire.WriteMsgSeq(l.conn, typ, seq, body); err != nil {
		return nil, fmt.Errorf("worker %d: send %s: %w", l.peer.Load(), typ, err)
	}
	for {
		env, err := wire.ReadMsg(l.conn)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %s reply: %w", l.peer.Load(), typ, err)
		}
		if env.Seq != seq {
			continue // stale reply to a timed-out earlier RPC
		}
		return env, nil
	}
}

func (l *workerLink) decodeReply(env *wire.Envelope) (*wire.Envelope, error) {
	if env.Type == wire.TypeError {
		var we wire.Error
		if err := env.Decode(&we); err != nil {
			return nil, fmt.Errorf("worker %d: malformed error reply: %w", l.peer.Load(), err)
		}
		return nil, &httpapi.Error{Code: we.Code, Message: fmt.Sprintf("worker %d: %s", l.peer.Load(), we.Message)}
	}
	return env, nil
}

// isWorkerDead classifies an RPC failure: an *httpapi.Error came back
// over a live connection (the worker is up, the operation failed); any
// other error is a transport failure and the worker is presumed gone.
func isWorkerDead(err error) bool {
	_, alive := err.(*httpapi.Error)
	return !alive
}

// newCluster starts a coordinator's cluster runtime: a persistent
// accept loop admitting (and readmitting) workers, and a heartbeat loop
// evicting dead ones. It waits up to formTimeout for the target worker
// count, then returns — possibly degraded — so the HTTP plane comes up
// regardless; late workers are admitted by the accept loop whenever
// they arrive.
func newCluster(ln net.Listener, cfg clusterConfig, logf func(string, ...any)) (*cluster, error) {
	if cfg.target < 1 {
		return nil, fmt.Errorf("cluster needs at least 1 worker, got %d", cfg.target)
	}
	if cfg.rpcTimeout <= 0 {
		cfg.rpcTimeout = 5 * time.Second
	}
	if cfg.longTimeout <= 0 {
		cfg.longTimeout = 60 * time.Second
	}
	if cfg.hbInterval == 0 {
		cfg.hbInterval = time.Second
	}
	if cfg.hbMisses <= 0 {
		cfg.hbMisses = 3
	}
	if cfg.formTimeout <= 0 {
		cfg.formTimeout = 30 * time.Second
	}
	if cfg.resyncRadius <= 0 {
		cfg.resyncRadius = 1
	}
	c := &cluster{
		logf:         logf,
		target:       cfg.target,
		ln:           ln,
		rpcTimeout:   cfg.rpcTimeout,
		longTimeout:  cfg.longTimeout,
		hbInterval:   cfg.hbInterval,
		hbMisses:     cfg.hbMisses,
		resyncRadius: cfg.resyncRadius,
		formed:       make(chan struct{}),
		journal:      make(map[string]*instanceLog),
		reconnects:   cfg.reconnects,
		inSync:       cfg.inSync,
	}
	for _, ld := range cfg.seed {
		body, err := json.Marshal(&ld)
		if err != nil {
			return nil, fmt.Errorf("seeding journal with %s: %w", ld.ID, err)
		}
		c.journal[ld.ID] = &instanceLog{entries: []journalEntry{
			{typ: wire.TypeLoad, body: body, digest: digestBytes(ld.Instance)},
		}}
	}
	go c.acceptLoop()
	if c.hbInterval > 0 {
		go c.heartbeatLoop()
	}
	select {
	case <-c.formed:
	case <-time.After(cfg.formTimeout):
		logf("mmlpd: cluster formation timed out with %d/%d workers — serving degraded until they join",
			c.liveWorkers(), c.target)
	}
	return c, nil
}

// Close tears the cluster down: the accept loop, the heartbeat loop and
// every worker connection.
func (c *cluster) Close() {
	c.closed.Store(true)
	c.ln.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.workers {
		l.conn.Close()
	}
}

func (c *cluster) liveWorkers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

func (c *cluster) degraded() bool { return c.liveWorkers() < c.target }

// acceptLoop admits workers for the cluster's whole lifetime: initial
// formation, late joiners, and crashed workers rejoining — all the same
// path.
func (c *cluster) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		go c.admit(conn)
	}
}

// admit runs the join protocol on one fresh control connection:
//
//  1. Hello, carrying the digests of every replica the worker still
//     holds (empty on a cold join).
//  2. Bulk catch-up outside any lock: replay the patch-log suffix each
//     replica is missing (or unload + full replay when the digest is
//     unknown — the worker diverged or the patch was never acked).
//  3. Under the membership locks — no patch can land concurrently — a
//     final delta catch-up, then a resync self-check per instance: the
//     worker rebuilds derived state, runs the self-stabilising protocol
//     against its own reference engine, and reports its digest. Only if
//     every digest matches the journal tip is the worker admitted.
//  4. Admission bumps the epoch and re-Assigns everyone, so the mesh
//     and partition bounds move to the new roster atomically.
func (c *cluster) admit(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(c.rpcTimeout))
	env, err := wire.ReadMsg(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || env.Type != wire.TypeHello {
		conn.Close()
		return
	}
	var h wire.Hello
	if err := env.Decode(&h); err != nil {
		conn.Close()
		return
	}
	l := &workerLink{dataAddr: h.DataAddr, conn: conn}
	tips, ok := c.sendCatchUp(l, h.Digests, false)
	if !ok {
		conn.Close()
		return
	}
	c.dataMu.Lock()
	defer c.dataMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		conn.Close()
		return
	}
	tips, ok = c.sendCatchUp(l, tips, false)
	if ok && !c.verifyReplicas(l, tips) {
		// One full-replay retry: the cheap digest-suffix path failed its
		// self-check, so re-ship everything from the loads.
		tips, ok = c.sendCatchUp(l, tips, true)
		ok = ok && c.verifyReplicas(l, tips)
	}
	if !ok {
		c.logf("mmlpd: rejecting worker at %s: catch-up failed", h.DataAddr)
		conn.Close()
		return
	}
	c.workers = append(c.workers, l)
	c.reassignLocked()
	if !c.memberLocked(l) {
		return // lost again during the reassign
	}
	if c.everFormed.Load() {
		c.reconnects.Inc()
		c.logf("mmlpd: worker readmitted (data plane %s), epoch %d, %d/%d workers",
			l.dataAddr, c.epoch, len(c.workers), c.target)
	} else {
		c.logf("mmlpd: worker joined (data plane %s), %d/%d workers", l.dataAddr, len(c.workers), c.target)
	}
	if len(c.workers) >= c.target {
		c.formOnce.Do(func() {
			c.everFormed.Store(true)
			close(c.formed)
			c.logf("mmlpd: cluster formed with %d workers", len(c.workers))
		})
	}
}

func (c *cluster) memberLocked(l *workerLink) bool {
	for _, w := range c.workers {
		if w == l {
			return true
		}
	}
	return false
}

// catchStep is one replayed control message of a catch-up plan.
type catchStep struct {
	typ  string
	body json.RawMessage
}

// plan computes the messages that bring a worker reporting `have`
// (instance ID → digest) to the journal tips, and returns those tips.
// force ignores the reported digests and replays everything from the
// loads.
func (c *cluster) plan(have map[string]string, force bool) ([]catchStep, map[string]string) {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	ids := make([]string, 0, len(c.journal))
	for id := range c.journal {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var steps []catchStep
	tips := make(map[string]string, len(ids))
	for _, id := range ids {
		entries := c.journal[id].entries
		tip := entries[len(entries)-1].digest
		tips[id] = tip
		d, held := have[id]
		if !force && held && d == tip {
			continue
		}
		from := -1
		if !force && held {
			for i, e := range entries {
				if e.digest == d {
					from = i
				}
			}
		}
		if from < 0 {
			// Unknown digest (or forced): drop whatever the worker holds
			// and replay from the load. This also covers the patch the
			// coordinator never acked — every replica converges on the
			// journaled prefix.
			if held || force {
				if b, err := json.Marshal(&wire.Unload{ID: id}); err == nil {
					steps = append(steps, catchStep{typ: wire.TypeUnload, body: b})
				}
			}
			steps = append(steps, stepsOf(entries)...)
		} else {
			steps = append(steps, stepsOf(entries[from+1:])...)
		}
	}
	stale := make([]string, 0)
	for id := range have {
		if _, ok := c.journal[id]; !ok {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		if b, err := json.Marshal(&wire.Unload{ID: id}); err == nil {
			steps = append(steps, catchStep{typ: wire.TypeUnload, body: b})
		}
	}
	return steps, tips
}

func stepsOf(entries []journalEntry) []catchStep {
	out := make([]catchStep, len(entries))
	for i, e := range entries {
		out[i] = catchStep{typ: e.typ, body: e.body}
	}
	return out
}

// sendCatchUp replays a catch-up plan to one worker and returns the
// journal tips the worker now holds.
func (c *cluster) sendCatchUp(l *workerLink, have map[string]string, force bool) (map[string]string, bool) {
	steps, tips := c.plan(have, force)
	for _, st := range steps {
		if _, err := l.callRetry(st.typ, st.body, c.longTimeout, 2); err != nil {
			c.logf("mmlpd: catch-up of worker at %s: %s: %v", l.dataAddr, st.typ, err)
			return nil, false
		}
	}
	return tips, true
}

// verifyReplicas runs the resync self-check on every instance the
// worker should now hold and compares its digests to the journal tips.
// The caller holds the membership locks, so no patch can move the tips
// underneath the check.
func (c *cluster) verifyReplicas(l *workerLink, tips map[string]string) bool {
	ids := make([]string, 0, len(tips))
	for id := range tips {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		env, err := l.call(wire.TypeResync, &wire.Resync{ID: id, Radius: c.resyncRadius}, c.longTimeout)
		if err != nil {
			c.logf("mmlpd: resync of %s on worker at %s: %v", id, l.dataAddr, err)
			return false
		}
		var st wire.State
		if env.Type != wire.TypeState || env.Decode(&st) != nil {
			return false
		}
		if st.Digest != tips[id] {
			c.logf("mmlpd: worker at %s: %s digest %s, want %s", l.dataAddr, id, st.Digest, tips[id])
			return false
		}
	}
	return true
}

// heartbeatLoop pings every worker each interval; hbMisses consecutive
// failures evict it. A worker busy in a long solve answers late (the
// control loop is FIFO), which is what the consecutive-miss threshold
// absorbs.
func (c *cluster) heartbeatLoop() {
	t := time.NewTicker(c.hbInterval)
	defer t.Stop()
	for range t.C {
		if c.closed.Load() {
			return
		}
		c.mu.RLock()
		links := append([]*workerLink(nil), c.workers...)
		c.mu.RUnlock()
		for _, l := range links {
			go func(l *workerLink) {
				if _, err := l.call(wire.TypePing, nil, c.rpcTimeout); err != nil && isWorkerDead(err) {
					if int(l.misses.Add(1)) >= c.hbMisses {
						c.logf("mmlpd: worker at %s missed %d heartbeats — evicting", l.dataAddr, c.hbMisses)
						c.noteFailure(l)
					}
					return
				}
				l.misses.Store(0)
			}(l)
		}
	}
}

// noteFailure drops a dead worker and re-Assigns the survivors.
func (c *cluster) noteFailure(l *workerLink) {
	c.dataMu.Lock()
	defer c.dataMu.Unlock()
	c.noteFailureLocked(l)
}

// noteFailureLocked is noteFailure for callers already holding dataMu.
func (c *cluster) noteFailureLocked(l *workerLink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := -1
	for i, w := range c.workers {
		if w == l {
			idx = i
		}
	}
	if idx < 0 {
		return // already evicted
	}
	c.workers = append(c.workers[:idx], c.workers[idx+1:]...)
	l.conn.Close()
	c.logf("mmlpd: worker at %s left the cluster (%d/%d remain)", l.dataAddr, len(c.workers), c.target)
	c.reassignLocked()
}

// reassignLocked bumps the epoch and sends every worker its new
// partition index and roster; the workers tear down their old mesh and
// build the new one before acking. A worker that fails its Assign is
// dropped and the reassign repeats with the survivors. Caller holds
// dataMu and mu.
func (c *cluster) reassignLocked() {
	for {
		c.epoch++
		n := len(c.workers)
		c.inSync.Set(float64(n))
		if n == 0 {
			return
		}
		peers := make([]string, n)
		for i, l := range c.workers {
			l.peer.Store(int32(i))
			peers[i] = l.dataAddr
		}
		failed := make([]bool, n)
		var wg sync.WaitGroup
		for i, l := range c.workers {
			wg.Add(1)
			go func(i int, l *workerLink) {
				defer wg.Done()
				asg := &wire.Assign{Self: i, Peers: peers, Epoch: c.epoch}
				if _, err := l.call(wire.TypeAssign, asg, c.longTimeout); err != nil {
					c.logf("mmlpd: assigning worker %d (epoch %d): %v", i, c.epoch, err)
					failed[i] = true
				}
			}(i, l)
		}
		wg.Wait()
		survivors := c.workers[:0]
		for i, l := range c.workers {
			if failed[i] {
				l.conn.Close()
			} else {
				survivors = append(survivors, l)
			}
		}
		if len(survivors) == len(c.workers) {
			c.logf("mmlpd: epoch %d: %d workers assigned", c.epoch, n)
			return
		}
		c.workers = survivors
	}
}

// journalPatch appends one fanned-out control message to an instance's
// patch log, compacting the log into a synthetic load when it grows
// long. loadBody lazily produces that synthetic load (the instance's
// current canonical state), so the common path never marshals it.
func (c *cluster) journalPatch(id, typ string, body json.RawMessage, digest string, loadBody func() json.RawMessage) {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	log, ok := c.journal[id]
	if !ok {
		return // unloaded concurrently
	}
	log.entries = append(log.entries, journalEntry{typ: typ, body: body, digest: digest})
	if len(log.entries) > journalCompactAfter {
		if b := loadBody(); b != nil {
			log.entries = []journalEntry{{typ: wire.TypeLoad, body: b, digest: digest}}
		}
	}
}

func (c *cluster) journalLoad(id string, body json.RawMessage, digest string) {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	c.journal[id] = &instanceLog{entries: []journalEntry{{typ: wire.TypeLoad, body: body, digest: digest}}}
}

func (c *cluster) journalUnload(id string) {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	delete(c.journal, id)
}

// fanoutLinks runs one RPC against the given workers concurrently and
// returns the ones that died. It never fails the caller's request: a
// worker that missed the message catches up from the journal when it
// rejoins. The caller holds c.mu shared — the roster it snapshotted and
// the journal state it appended are one atomic unit with respect to
// admissions, so a joining worker either receives this fan-out or
// replays it from the journal, never both.
func (c *cluster) fanoutLinks(links []*workerLink, typ string, body json.RawMessage, timeout time.Duration) []*workerLink {
	var dead []*workerLink
	var dmu sync.Mutex
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(l *workerLink) {
			defer wg.Done()
			if _, err := l.callRetry(typ, body, timeout, 2); err != nil {
				c.logf("mmlpd: %s fan-out to worker %d: %v", typ, l.peer.Load(), err)
				if isWorkerDead(err) {
					dmu.Lock()
					dead = append(dead, l)
					dmu.Unlock()
				}
			}
		}(l)
	}
	wg.Wait()
	return dead
}

// fanout journals nothing: it snapshots the roster, fans the message
// out and heals afterwards. Used for messages that are idempotent at
// the worker (unload).
func (c *cluster) fanout(typ string, body json.RawMessage, timeout time.Duration) {
	c.mu.RLock()
	links := append([]*workerLink(nil), c.workers...)
	dead := c.fanoutLinks(links, typ, body, timeout)
	c.mu.RUnlock()
	for _, l := range dead {
		c.noteFailure(l)
	}
}

// replicateLoad ships a freshly loaded instance to every worker and
// opens its patch journal. The instance travels as its canonical JSON
// encoding, which round-trips float64 coefficients exactly — the
// replicas are bit-identical. raw is that canonical encoding (the
// caller already marshalled it for the WAL).
func (c *cluster) replicateLoad(id string, raw json.RawMessage, req *loadRequest) {
	msg := &wire.Load{
		ID: id, Instance: raw,
		CollaborationOblivious: req.CollaborationOblivious,
		Workers:                req.Workers,
	}
	body, err := json.Marshal(msg)
	if err != nil {
		c.logf("mmlpd: encoding load %s: %v", id, err)
		return
	}
	c.mu.RLock()
	c.journalLoad(id, body, digestBytes(raw))
	links := append([]*workerLink(nil), c.workers...)
	dead := c.fanoutLinks(links, wire.TypeLoad, body, c.longTimeout)
	c.mu.RUnlock()
	for _, l := range dead {
		c.noteFailure(l)
	}
}

// replicateUnload drops the replicas and closes the journal.
func (c *cluster) replicateUnload(id string) {
	c.journalUnload(id)
	b, err := json.Marshal(&wire.Unload{ID: id})
	if err != nil {
		return
	}
	c.fanout(wire.TypeUnload, b, c.rpcTimeout)
}

func wireCoeffs(ps []coeffPatch) []wire.Coeff {
	out := make([]wire.Coeff, len(ps))
	for i, p := range ps {
		out[i] = wire.Coeff{Row: p.Row, Agent: p.Agent, Coeff: p.Coeff}
	}
	return out
}

// replicatePatch journals one applied patch and fans it to every
// replica. The caller holds the instance's linearisation lock and has
// already applied the patch locally, so digest is the post-apply state
// every replica must reach. Worker failures never fail the patch — the
// journal retains it for catch-up at rejoin.
func (c *cluster) replicatePatch(m *managed, typ string, msg any) {
	body, err := json.Marshal(msg)
	if err != nil {
		c.logf("mmlpd: encoding %s patch for %s: %v", typ, m.ID, err)
		return
	}
	in := m.sess.Instance()
	digest := instanceDigest(in)
	// Journal + fan-out under the shared membership lock: an admission
	// (exclusive) either completes before — and the new worker receives
	// this fan-out — or after, and catches the patch up from the journal.
	// Never both.
	c.mu.RLock()
	c.journalPatch(m.ID, typ, body, digest, func() json.RawMessage {
		raw, err := json.Marshal(in)
		if err != nil {
			return nil
		}
		b, err := json.Marshal(&wire.Load{
			ID: m.ID, Instance: raw,
			CollaborationOblivious: m.oblivious, Workers: m.workers,
		})
		if err != nil {
			return nil
		}
		return b
	})
	links := append([]*workerLink(nil), c.workers...)
	dead := c.fanoutLinks(links, typ, body, c.rpcTimeout)
	c.mu.RUnlock()
	for _, l := range dead {
		c.noteFailure(l)
	}
}

func (c *cluster) replicateWeights(m *managed, req *weightsRequest) {
	c.replicatePatch(m, wire.TypeWeights, &wire.Weights{
		ID: m.ID, Resources: wireCoeffs(req.Resources), Parties: wireCoeffs(req.Parties),
	})
}

func (c *cluster) replicateTopology(m *managed, req *topologyRequest) {
	ops := make([]wire.TopoOp, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = wire.TopoOp{Op: op.Op, Kind: op.Kind, Row: op.Row, Agent: op.Agent, Coeff: op.Coeff}
	}
	c.replicatePatch(m, wire.TypeTopology, &wire.Topology{ID: m.ID, Ops: ops})
}

// degradedError is the explicit envelope a solve gets while the cluster
// cannot serve it — never a silent stale answer, never a permanent 502.
func degradedError(format string, args ...any) *httpapi.Error {
	return &httpapi.Error{
		Code:        httpapi.CodeClusterDegraded,
		Message:     fmt.Sprintf(format, args...),
		RetryAfterS: 1,
	}
}

// gather fans one solve to every worker and assembles the full solution
// vector from the partition slices. A dead worker triggers an eviction
// and epoch bump, and the solve retries once against the healed roster;
// if that also fails the query degrades with an explicit retryable
// envelope.
func (c *cluster) gather(id, kind string, radius, n int) ([]float64, error) {
	c.dataMu.Lock()
	defer c.dataMu.Unlock()
	var firstErr error
	for attempt := 0; attempt < 2; attempt++ {
		c.mu.RLock()
		links := append([]*workerLink(nil), c.workers...)
		c.mu.RUnlock()
		if len(links) == 0 {
			return nil, degradedError("no live workers (cluster target %d)", c.target)
		}
		envs := make([]*wire.Envelope, len(links))
		errs := make([]error, len(links))
		var wg sync.WaitGroup
		for i, l := range links {
			wg.Add(1)
			go func(i int, l *workerLink) {
				defer wg.Done()
				envs[i], errs[i] = l.call(wire.TypeSolve, &wire.Solve{ID: id, Kind: kind, Radius: radius}, c.longTimeout)
			}(i, l)
		}
		wg.Wait()
		failed := false
		for i, err := range errs {
			if err == nil {
				continue
			}
			failed = true
			if firstErr == nil {
				firstErr = err
			}
			if isWorkerDead(err) {
				c.noteFailureLocked(links[i]) // dataMu held: membership frozen, safe to heal here
			}
		}
		if failed {
			continue // retry once against the reassigned roster
		}
		x := make([]float64, n)
		members := len(links)
		for i, env := range envs {
			if env.Type != wire.TypePartial {
				return nil, &httpapi.Error{Code: httpapi.CodeCluster,
					Message: fmt.Sprintf("worker %d: expected %s, got %s", i, wire.TypePartial, env.Type)}
			}
			var p wire.Partial
			if err := env.Decode(&p); err != nil {
				return nil, &httpapi.Error{Code: httpapi.CodeCluster, Message: fmt.Sprintf("worker %d: %v", i, err)}
			}
			lo, hi := (dist.Partition{Self: i, Members: members}).Bounds(n)
			if p.Lo != lo || p.Hi != hi || len(p.X) != hi-lo {
				return nil, &httpapi.Error{Code: httpapi.CodeCluster,
					Message: fmt.Sprintf("worker %d returned slice [%d,%d) with %d outputs, want [%d,%d)",
						i, p.Lo, p.Hi, len(p.X), lo, hi)}
			}
			copy(x[lo:hi], p.X)
		}
		return x, nil
	}
	return nil, degradedError("solve failed across the cluster after healing retry: %v", firstErr)
}

// runQuery executes one solve query across the cluster: the workers
// compute the partition slices of X (exchanging only R-hop boundary
// state among themselves) and the coordinator derives the certificate
// bounds from its own replica — bit-identical to the single-process
// session path, which the cluster tests pin. The caller holds m.mu.
func (c *cluster) runQuery(m *managed, q solveQuery, includeX bool) (solveResult, error) {
	in := m.sess.Instance()
	n := in.NumAgents()
	start := time.Now()
	res := solveResult{Kind: q.Kind}
	switch q.Kind {
	case "safe":
		x, err := c.gather(m.ID, "safe", 0, n)
		if err != nil {
			return res, err
		}
		res.Omega = in.Objective(x)
		if includeX {
			res.X = x
		}
	case "average":
		x, err := c.gather(m.ID, "average", q.Radius, n)
		if err != nil {
			return res, err
		}
		pb, rb, err := m.sess.Certificate(q.Radius)
		if err != nil {
			return res, err
		}
		res.Radius = q.Radius
		res.Omega = in.Objective(x)
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
		if includeX {
			res.X = x
		}
	case "adaptive":
		// The radius search is pure ball structure, so it runs on the
		// coordinator's replica — the same loop as Solver.Adaptive — and
		// only the final averaging solve fans out.
		if q.Target <= 1 {
			return res, fmt.Errorf("target ratio must exceed 1, got %v", q.Target)
		}
		if q.MaxRadius < 1 {
			return res, fmt.Errorf("maxRadius must be ≥ 1, got %d", q.MaxRadius)
		}
		chosen, achieved := q.MaxRadius, false
		for r := 1; r <= q.MaxRadius; r++ {
			pb, rb, err := m.sess.Certificate(r)
			if err != nil {
				return res, err
			}
			if pb*rb <= q.Target {
				chosen, achieved = r, true
				break
			}
		}
		x, err := c.gather(m.ID, "average", chosen, n)
		if err != nil {
			return res, err
		}
		pb, rb, err := m.sess.Certificate(chosen)
		if err != nil {
			return res, err
		}
		res.Radius = chosen
		res.Omega = in.Objective(x)
		res.PartyBound, res.ResourceBound = pb, rb
		res.Certificate = pb * rb
		res.Achieved = &achieved
		if includeX {
			res.X = x
		}
	default:
		return res, fmt.Errorf("unknown kind %q", q.Kind)
	}
	res.Micros = time.Since(start).Microseconds()
	return res, nil
}

// instanceDigest fingerprints an instance's canonical JSON encoding.
// Coordinator and workers compute it over their own replicas; equal
// digests certify the patch streams applied identically.
func instanceDigest(in *maxminlp.Instance) string {
	b, err := json.Marshal(in)
	if err != nil {
		return "unencodable"
	}
	return digestBytes(b)
}

// digestBytes is instanceDigest over an already-canonical encoding.
func digestBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// handleCluster is GET /v1/cluster: membership, epoch and degradation
// state plus a per-instance digest snapshot. Each instance's digests
// are gathered under its linearisation lock, so the view is consistent
// — no patch can land between the coordinator's digest and the
// workers'. An unreachable worker marks the instance out of sync
// instead of failing the whole request.
func (s *server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	c := s.getCluster()
	if c == nil {
		apiErrorObj(w, &httpapi.Error{Code: httpapi.CodeRecovering,
			Message: "cluster is still forming", RetryAfterS: 1})
		return
	}
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	c.mu.RLock()
	links := append([]*workerLink(nil), c.workers...)
	epoch := c.epoch
	c.mu.RUnlock()
	resp := httpapi.ClusterResponse{
		SchemaVersion: httpapi.SchemaVersion,
		Workers:       make([]httpapi.ClusterWorker, len(links)),
		Instances:     make([]httpapi.ClusterInstance, 0, len(ms)),
		Epoch:         epoch,
		TargetWorkers: c.target,
		Degraded:      len(links) < c.target,
	}
	for i, l := range links {
		resp.Workers[i] = httpapi.ClusterWorker{Peer: int(l.peer.Load()), DataAddr: l.dataAddr}
	}
	var dead []*workerLink
	for _, m := range ms {
		m.mu.Lock()
		in := m.sess.Instance()
		ci := httpapi.ClusterInstance{
			ID: m.ID, Agents: in.NumAgents(),
			Coordinator: instanceDigest(in),
			InSync:      len(links) == c.target,
		}
		type snap struct {
			digest string
			dead   bool
		}
		snaps := make([]snap, len(links))
		var wg sync.WaitGroup
		for i, l := range links {
			wg.Add(1)
			go func(i int, l *workerLink) {
				defer wg.Done()
				env, err := l.call(wire.TypeSnapshot, &wire.Snapshot{ID: m.ID}, c.rpcTimeout)
				if err != nil {
					snaps[i] = snap{digest: "unreachable", dead: isWorkerDead(err)}
					return
				}
				var st wire.State
				if env.Type != wire.TypeState || env.Decode(&st) != nil {
					snaps[i] = snap{digest: "malformed"}
					return
				}
				snaps[i] = snap{digest: st.Digest}
			}(i, l)
		}
		wg.Wait()
		m.mu.Unlock()
		for i, sn := range snaps {
			ci.Workers = append(ci.Workers, sn.digest)
			if sn.digest != ci.Coordinator {
				ci.InSync = false
			}
			if sn.dead {
				dead = append(dead, links[i])
			}
		}
		resp.Instances = append(resp.Instances, ci)
	}
	for _, l := range dead {
		c.noteFailure(l)
	}
	writeJSON(w, http.StatusOK, resp)
}
