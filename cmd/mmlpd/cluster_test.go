package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"maxminlp"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/mmlpclient"
	"maxminlp/internal/obs"
)

// startCluster boots an in-process cluster — a coordinator server plus
// workers joining over real loopback TCP, exchanging round state over a
// real worker-to-worker mesh — and returns the coordinator's test
// server. Workers run without the rejoin loop, so cleanup can tear the
// control connections down and verify every worker exits cleanly.
func startCluster(t *testing.T, workers int) (*httptest.Server, *server) {
	return startClusterCfg(t, workers, clusterConfig{target: workers})
}

func startClusterCfg(t *testing.T, workers int, cfg clusterConfig) (*httptest.Server, *server) {
	t.Helper()
	quiet := func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			errc <- runWorker(ln.Addr().String(), "127.0.0.1:0", "", quiet)
		}()
	}
	c, err := newCluster(ln, cfg, quiet)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	srv := newServer(nil)
	srv.isCoordinator = true
	srv.cluster = c
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
		for i := 0; i < workers; i++ {
			if err := <-errc; err != nil {
				t.Errorf("worker exit: %v", err)
			}
		}
	})
	return ts, srv
}

// severWorker closes one admitted worker's control connection, as a
// crash would.
func severWorker(t *testing.T, c *cluster, i int) {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i >= len(c.workers) {
		t.Fatalf("severWorker(%d): only %d workers", i, len(c.workers))
	}
	c.workers[i].conn.Close()
}

func bitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: X[%d] = %x, want %x", label, v, got[v], want[v])
		}
	}
}

// TestClusterBitIdentity is the acceptance gate for the serving tier: a
// 3-process-shaped cluster (coordinator + 2 workers over TCP) must
// serve solution vectors and certificate bounds bit-identical to a
// single-process core.Solver over the same corpus — before and after
// weight and topology churn.
func TestClusterBitIdentity(t *testing.T) {
	ts, _ := startCluster(t, 2)
	cl := mmlpclient.New(ts.URL, nil)
	noop := obs.NewRegistry().Counter("test_panics", "")

	corpus := []struct {
		name string
		req  httpapi.LoadRequest
	}{
		{"torus6x6", httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{6, 6}}}},
		{"grid5x5w", httpapi.LoadRequest{Grid: &httpapi.LatticeSpec{Dims: []int{5, 5}, RandomWeights: true, Seed: 7}}},
		{"random30", httpapi.LoadRequest{Random: &httpapi.RandomSpec{Agents: 30, Resources: 22, Parties: 9, MaxVI: 4, MaxVK: 3, Seed: 4}}},
	}
	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			info, err := cl.Load(&tc.req)
			if err != nil {
				t.Fatal(err)
			}
			// The single-process reference: an independent session over the
			// identical instance.
			req := tc.req
			in, err := buildInstance(&req, noop)
			if err != nil {
				t.Fatal(err)
			}
			sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})

			check := func(stage string) {
				res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
					IncludeX: true,
					Queries: []httpapi.SolveQuery{
						{Kind: "safe"},
						{Kind: "average", Radius: 1},
						{Kind: "average", Radius: 2},
						{Kind: "adaptive", Target: 3.0, MaxRadius: 4},
						{Kind: "certificate", Radius: 2},
					},
				})
				if err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
				bitIdentical(t, stage+"/safe", res[0].X, sess.Safe())
				for qi, radius := range []int{1, 2} {
					ref, err := sess.LocalAverage(radius)
					if err != nil {
						t.Fatal(err)
					}
					r := res[1+qi]
					bitIdentical(t, fmt.Sprintf("%s/average R%d", stage, radius), r.X, ref.X)
					if r.PartyBound != ref.PartyBound || r.ResourceBound != ref.ResourceBound ||
						r.Certificate != ref.RatioCertificate() {
						t.Fatalf("%s/average R%d bounds (%v,%v,%v), want (%v,%v,%v)", stage, radius,
							r.PartyBound, r.ResourceBound, r.Certificate,
							ref.PartyBound, ref.ResourceBound, ref.RatioCertificate())
					}
					if r.Omega != in.Objective(ref.X) {
						t.Fatalf("%s/average R%d omega = %v, want %v", stage, radius, r.Omega, in.Objective(ref.X))
					}
				}
				ad, err := sess.Adaptive(3.0, 4)
				if err != nil {
					t.Fatal(err)
				}
				r := res[3]
				if r.Radius != ad.Radius || r.Achieved == nil || *r.Achieved != ad.Achieved {
					t.Fatalf("%s/adaptive radius/achieved = %d/%v, want %d/%v",
						stage, r.Radius, r.Achieved, ad.Radius, ad.Achieved)
				}
				bitIdentical(t, stage+"/adaptive", r.X, ad.X)
				pb, rb, err := sess.Certificate(2)
				if err != nil {
					t.Fatal(err)
				}
				if res[4].PartyBound != pb || res[4].ResourceBound != rb {
					t.Fatalf("%s/certificate = (%v,%v), want (%v,%v)",
						stage, res[4].PartyBound, res[4].ResourceBound, pb, rb)
				}
			}
			check("initial")

			// Weight churn: re-weight the first entry of resource row 0 on
			// both sides, solve again.
			agent := in.Resource(0)[0].Agent
			if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
				Resources: []httpapi.CoeffPatch{{Row: 0, Agent: agent, Coeff: 2.25}},
			}); err != nil {
				t.Fatal(err)
			}
			if err := sess.UpdateWeights([]maxminlp.WeightDelta{
				{Kind: maxminlp.ResourceWeight, Row: 0, Agent: agent, Coeff: 2.25},
			}); err != nil {
				t.Fatal(err)
			}
			in = sess.Instance()
			check("after weights")

			// Topology churn: one agent joins resource 0, one leaves.
			n := in.NumAgents()
			if _, err := cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: []httpapi.TopoOp{
				{Op: "addAgent"},
				{Op: "addEdge", Row: 0, Agent: n, Coeff: 1.25},
				{Op: "removeAgent", Agent: 1},
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.UpdateTopology([]maxminlp.TopoUpdate{
				maxminlp.AddAgent(),
				maxminlp.AddResourceEdge(0, n, 1.25),
				maxminlp.RemoveAgent(1),
			}); err != nil {
				t.Fatal(err)
			}
			in = sess.Instance()
			check("after topology")
		})
	}

	// After all that churn, every replica must still agree with the
	// coordinator digest for digest.
	snap, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != httpapi.SchemaVersion || len(snap.Workers) != 2 {
		t.Fatalf("cluster snapshot = %+v", snap)
	}
	if len(snap.Instances) != len(corpus) {
		t.Fatalf("cluster reports %d instances, want %d", len(snap.Instances), len(corpus))
	}
	for _, ci := range snap.Instances {
		if !ci.InSync || len(ci.Workers) != 2 {
			t.Fatalf("instance %s out of sync: %+v", ci.ID, ci)
		}
	}

	// The coordinator health reports its role.
	h, err := cl.Health()
	if err != nil || h.Role != "coordinator" || h.Workers != 2 {
		t.Fatalf("health = %+v, %v", h, err)
	}
}

// TestClusterPatchLinearisation hammers one cluster instance with
// concurrent weight patches on disjoint rows while solve clients read
// through the coordinator. Disjoint rows commute, so every served X
// must equal the cold solve of some per-client prefix pair, and the
// cluster must end in sync — the per-instance linearisation lock
// spanning processes is what makes this hold.
func TestClusterPatchLinearisation(t *testing.T) {
	ts, _ := startCluster(t, 2)
	cl := mmlpclient.New(ts.URL, nil)

	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{6, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := maxminlp.Torus([]int{6, 6}, maxminlp.LatticeOptions{})

	const iters = 4
	rows := []int{2, 17}
	agents := []int{in.Resource(2)[0].Agent, in.Resource(17)[0].Agent}
	coeff := func(client, i int) float64 { return 0.5 + float64(client) + float64(i)/4 }

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	xs := make(chan []float64, 16)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
					Resources: []httpapi.CoeffPatch{{Row: rows[c], Agent: agents[c], Coeff: coeff(c, i)}},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
					IncludeX: true,
					Queries:  []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
				})
				if err != nil {
					errs <- err
					return
				}
				xs <- res[0].X
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(xs)
	for err := range errs {
		t.Fatal(err)
	}

	// Enumerate the linearised states lazily and match every capture.
	refs := map[[2]int][]float64{}
	coldX := func(k [2]int) []float64 {
		if x, ok := refs[k]; ok {
			return x
		}
		state := in
		var err error
		for c, pre := range k {
			for i := 0; i < pre; i++ {
				state, err = state.UpdateCoeffs([]maxminlp.CoeffUpdate{
					{Row: rows[c], Agent: agents[c], Coeff: coeff(c, i)},
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		ref, err := maxminlp.LocalAverage(state, maxminlp.NewGraph(state, maxminlp.GraphOptions{}), 1)
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = ref.X
		return ref.X
	}
	same := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) == len(b)
	}
	for x := range xs {
		matched := false
		for a := 0; a <= iters && !matched; a++ {
			for b := 0; b <= iters && !matched; b++ {
				matched = same(x, coldX([2]int{a, b}))
			}
		}
		if !matched {
			t.Fatal("served X matches no linearised patch state")
		}
	}

	// Final state: everything applied, replicas in sync.
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true, Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "final", res[0].X, coldX([2]int{iters, iters}))
	snap, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range snap.Instances {
		if !ci.InSync {
			t.Fatalf("instance %s out of sync after hammer: %+v", ci.ID, ci)
		}
	}
}

// TestClusterWorkerFailure: when a worker drops, the coordinator heals
// around it — solves re-plan onto the survivors and still answer
// bit-identically, loads keep succeeding, and only a fully dead roster
// degrades, with the explicit cluster/degraded envelope (503 plus a
// retry hint), never a permanent failure.
func TestClusterWorkerFailure(t *testing.T) {
	ts, srv := startCluster(t, 2)
	cl := mmlpclient.New(ts.URL, nil)

	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := maxminlp.Torus([]int{4, 4}, maxminlp.LatticeOptions{})
	ref := maxminlp.NewSolver(in, maxminlp.GraphOptions{})

	// Kill worker 0. The next solve's fan-out detects the dead link,
	// evicts it, reassigns the survivor the whole partition and retries
	// — the answer stays bit-identical to the single-process core.
	severWorker(t, srv.cluster, 0)
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true,
		Queries:  []httpapi.SolveQuery{{Kind: "safe"}, {Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatalf("solve after worker loss should heal onto the survivor: %v", err)
	}
	bitIdentical(t, "healed/safe", res[0].X, ref.Safe())
	avg, err := ref.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "healed/average", res[1].X, avg.X)

	// Degradation is visible, not fatal: the roster is below target.
	snap, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Degraded || len(snap.Workers) != 1 || snap.Epoch == 0 {
		t.Fatalf("cluster after eviction = %+v, want degraded single-worker roster", snap)
	}

	// Loads still succeed while degraded — the journal is the source of
	// truth and readmitted workers catch up from it.
	info2, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil {
		t.Fatalf("load while degraded = %v, want success", err)
	}

	// Kill the survivor too: partitioned solves now answer the explicit
	// degraded envelope — 503, stable code, retry hint — never a hang or
	// a bare status.
	severWorker(t, srv.cluster, 0)
	var apiErr *httpapi.Error
	_, err = cl.Solve(info.ID, &httpapi.SolveRequest{Queries: []httpapi.SolveQuery{{Kind: "safe"}}})
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeClusterDegraded ||
		apiErr.Status != http.StatusServiceUnavailable || apiErr.RetryAfterS < 1 {
		t.Fatalf("solve with no workers = %v, want %s with a retry hint", err, httpapi.CodeClusterDegraded)
	}

	// Both instances remain loaded and listable throughout.
	list, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 2 || list.Instances[0].ID != info.ID || list.Instances[1].ID != info2.ID {
		t.Fatalf("instances after failures = %+v", list.Instances)
	}
}

// TestClientRoundTripEveryCode drives the mmlpclient against a live
// single-role daemon through every stable error code, verifying the
// envelope decodes into *httpapi.Error with the right code and status.
func TestClientRoundTripEveryCode(t *testing.T) {
	// Lower the serving caps so the growth rejections trigger on toy
	// instances.
	restore := []int{maxServedAgents, maxServedRows, maxPatchEntries}
	maxServedAgents, maxServedRows, maxPatchEntries = 20, 64, 8
	defer func() {
		maxServedAgents, maxServedRows, maxPatchEntries = restore[0], restore[1], restore[2]
	}()

	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()
	cl := mmlpclient.New(ts.URL, nil)

	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil {
		t.Fatal(err)
	}

	expect := func(label string, err error, code string) {
		t.Helper()
		var apiErr *httpapi.Error
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: err = %v, want *httpapi.Error", label, err)
		}
		if apiErr.Code != code || apiErr.Status != httpapi.Status(code) {
			t.Fatalf("%s: got code %q status %d, want %q status %d",
				label, apiErr.Code, apiErr.Status, code, httpapi.Status(code))
		}
	}

	// invalid_json — the one shape the typed client cannot produce.
	resp, err := http.Post(ts.URL+"/v1/instances", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	var env httpapi.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("invalid_json: no envelope (%v)", err)
	}
	resp.Body.Close()
	if env.Error.Code != httpapi.CodeInvalidJSON || resp.StatusCode != httpapi.Status(httpapi.CodeInvalidJSON) {
		t.Fatalf("invalid_json: got %q status %d", env.Error.Code, resp.StatusCode)
	}

	_, err = cl.Load(&httpapi.LoadRequest{})
	expect("invalid_argument", err, httpapi.CodeInvalidArgument)

	_, err = cl.Get("nope")
	expect("not_found", err, httpapi.CodeNotFound)

	// The generator pre-checks reject oversized specs with 400 before any
	// allocation; the 413 path guards inline JSON, where the size is only
	// known after decoding.
	big25, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	raw, err := json.Marshal(big25)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Load(&httpapi.LoadRequest{Instance: raw})
	expect("instance_too_large", err, httpapi.CodeInstanceTooLarge)

	big := make([]httpapi.CoeffPatch, maxPatchEntries+1)
	for i := range big {
		big[i] = httpapi.CoeffPatch{Row: 0, Agent: 0, Coeff: 1}
	}
	_, err = cl.PatchWeights(info.ID, &httpapi.WeightsRequest{Resources: big})
	expect("patch_entries", err, httpapi.CodePatchEntries)

	ops := make([]httpapi.TopoOp, maxPatchEntries+1)
	for i := range ops {
		ops[i] = httpapi.TopoOp{Op: "addAgent"}
	}
	_, err = cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: ops})
	expect("topo_ops", err, httpapi.CodeTopoOps)

	grow := make([]httpapi.TopoOp, 5)
	for i := range grow {
		grow[i] = httpapi.TopoOp{Op: "addAgent"}
	}
	_, err = cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: grow})
	expect("agent_growth", err, httpapi.CodeAgentGrowth)

	// A 4x4 torus holds 16+16 rows; with the row cap pinched to 33, two
	// row-creating addEdge ops trip row_growth while staying under the
	// 8-op batch cap.
	maxServedRows = 33
	_, err = cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: []httpapi.TopoOp{
		{Op: "addEdge", Row: 16, Agent: 0, Coeff: 1},
		{Op: "addEdge", Row: 17, Agent: 1, Coeff: 1},
	}})
	expect("row_growth", err, httpapi.CodeRowGrowth)
	maxServedRows = 64

	// cluster — only a coordinator serves /v1/cluster, so the plain mux
	// 404 exercises the client's no-envelope fallback alongside the real
	// 502 path covered by TestClusterWorkerFailure.
	_, err = cl.Cluster()
	var apiErr *httpapi.Error
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeInternal || apiErr.Status != http.StatusNotFound {
		t.Fatalf("cluster on single daemon = %v", err)
	}

	// server/recovering — a daemon replaying its WAL answers 503 with
	// the stable code and a retry hint on every API route, while
	// liveness keeps answering. (cluster/degraded, the other 503, is
	// round-tripped by TestClusterWorkerFailure against a real cluster.)
	rsrv := newServer(nil)
	rsrv.recovering.Store(true)
	rts := httptest.NewServer(rsrv.handler())
	defer rts.Close()
	rcl := mmlpclient.New(rts.URL, nil)
	_, err = rcl.List()
	expect("server_recovering", err, httpapi.CodeRecovering)
	errors.As(err, &apiErr)
	if apiErr.RetryAfterS < 1 {
		t.Fatalf("recovering envelope retry_after_s = %d, want ≥ 1", apiErr.RetryAfterS)
	}
	if h, err := rcl.Health(); err != nil || h.Status != "recovering" {
		t.Fatalf("health while recovering = %+v, %v", h, err)
	}

	// The Retry-After contract on load-shedding rejections.
	_, err = cl.PatchWeights(info.ID, &httpapi.WeightsRequest{Resources: big})
	errors.As(err, &apiErr)
	if apiErr.RetryAfterS != 60 {
		t.Fatalf("413 envelope retry_after_s = %d, want 60", apiErr.RetryAfterS)
	}

	// And the happy-path client methods against the live daemon.
	if _, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	if h, err := cl.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if err := cl.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	expect("delete twice", cl.Delete(info.ID), httpapi.CodeNotFound)
}
