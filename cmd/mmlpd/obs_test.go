package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
)

// doRaw issues one JSON request and returns the raw response (closed at
// test cleanup), for asserting on status codes and headers.
func doRaw(t *testing.T, ts *httptest.Server, method, path string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// scrapeMetrics fetches /metrics and validates it with the strict
// exposition parser — the same check CI runs against a live daemon.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]obs.ParsedFamily {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
	byName := make(map[string]obs.ParsedFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// sampleValue returns the value of the family's sample whose labels
// include every given pair; -1 when absent.
func sampleValue(f obs.ParsedFamily, labels map[string]string) float64 {
	for _, s := range f.Samples {
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	return -1
}

// TestMetricsExposition drives a full request mix through the daemon
// and requires /metrics to serve a strictly parseable Prometheus text
// exposition containing the per-endpoint latency histograms, the
// solve-phase metrics recorded by the shared session bundle, and the
// Go runtime gauges.
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{6, 6}}}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID
	var results []solveResult
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "average", Radius: 1}},
	}, http.StatusOK, &results)
	do(t, ts, "POST", base+"/weights", weightsRequest{
		Resources: []coeffPatch{{Row: 0, Agent: 0, Coeff: 2}},
	}, http.StatusOK, nil)

	fams := scrapeMetrics(t, ts)

	lat, ok := fams["mmlpd_http_request_seconds"]
	if !ok || lat.Type != "histogram" {
		t.Fatalf("mmlpd_http_request_seconds missing or not a histogram: %+v", lat)
	}
	for _, ep := range []string{"load", "solve", "weights"} {
		found := false
		for _, s := range lat.Samples {
			if s.Name == "mmlpd_http_request_seconds_count" && s.Labels["endpoint"] == ep && s.Value >= 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("no latency recorded for endpoint %q", ep)
		}
	}
	reqs, ok := fams["mmlpd_http_requests_total"]
	if !ok || reqs.Type != "counter" {
		t.Fatalf("mmlpd_http_requests_total missing: %+v", reqs)
	}
	if v := sampleValue(reqs, map[string]string{"endpoint": "solve", "code": "200"}); v != 1 {
		t.Errorf("solve 200 count = %v, want 1", v)
	}

	// Solve-pipeline metrics flow from the session into the same
	// registry.
	if f := fams["mmlp_solve_passes_total"]; sampleValue(f, map[string]string{"kind": "full"}) < 1 {
		t.Errorf("no full solve pass recorded: %+v", f)
	}
	phases, ok := fams["mmlp_solve_phase_seconds"]
	if !ok || phases.Type != "histogram" {
		t.Fatalf("mmlp_solve_phase_seconds missing: %+v", phases)
	}
	if f := fams["mmlp_lp_solves_total"]; len(f.Samples) == 0 || f.Samples[0].Value < 1 {
		t.Errorf("no LP solves recorded: %+v", f)
	}

	// Runtime and daemon gauges refresh at scrape time.
	if f := fams["go_goroutines"]; len(f.Samples) == 0 || f.Samples[0].Value < 1 {
		t.Errorf("go_goroutines implausible: %+v", f)
	}
	if f := fams["mmlpd_instances"]; len(f.Samples) == 0 || f.Samples[0].Value != 1 {
		t.Errorf("mmlpd_instances = %+v, want 1", f)
	}
}

// TestRejectionMetricsAndRetryAfter sends requests past the serving
// caps and checks the 413 carries a Retry-After hint and increments the
// reason-labelled rejection counter.
func TestRejectionMetricsAndRetryAfter(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{4, 4}}}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID

	big := weightsRequest{Resources: make([]coeffPatch, maxPatchEntries+1)}
	resp := doRaw(t, ts, "POST", base+"/weights", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized patch: status %d, want 413", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("413 response missing Retry-After")
	}

	bigTopo := topologyRequest{Ops: make([]topoOpSpec, maxPatchEntries+1)}
	if resp := doRaw(t, ts, "POST", base+"/topology", bigTopo); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized topo patch: status %d, want 413", resp.StatusCode)
	}

	fams := scrapeMetrics(t, ts)
	rej, ok := fams["mmlpd_rejections_total"]
	if !ok {
		t.Fatal("mmlpd_rejections_total missing")
	}
	if v := sampleValue(rej, map[string]string{"reason": "patch_entries"}); v != 1 {
		t.Errorf("patch_entries rejections = %v, want 1", v)
	}
	if v := sampleValue(rej, map[string]string{"reason": "topo_ops"}); v != 1 {
		t.Errorf("topo_ops rejections = %v, want 1", v)
	}
}

// TestPanicRecoveredCounter feeds a spec whose invariants only the
// generator itself checks (by panicking); the daemon must convert the
// panic to a 400 and count it.
func TestPanicRecoveredCounter(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var errResp httpapi.ErrorEnvelope
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Random: &randomSpec{Agents: 5, Resources: 3, MaxVI: 0, MaxVK: 1},
	}, http.StatusBadRequest, &errResp)
	if errResp.Error == nil || errResp.Error.Code != httpapi.CodeInvalidArgument ||
		!strings.Contains(errResp.Error.Message, "invalid instance spec") {
		t.Errorf("error = %+v, want a recovered-panic invalid_argument envelope", errResp.Error)
	}

	var stats statsResponse
	do(t, ts, "GET", "/v1/stats", nil, http.StatusOK, &stats)
	if stats.PanicsRecovered != 1 {
		t.Errorf("panicsRecovered = %d, want 1", stats.PanicsRecovered)
	}
}

// TestSolveWorkersDefaultAndStats: the -solve-workers daemon default
// applies when a load request leaves workers unset, an explicit request
// workers field wins, and /v1/stats reports the effective count per
// instance.
func TestSolveWorkersDefaultAndStats(t *testing.T) {
	srv := newServer(nil)
	srv.solveWorkers = 3
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var def, explicit instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{4, 4}}}, http.StatusCreated, &def)
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{4, 4}}, Workers: 2}, http.StatusCreated, &explicit)
	if def.Workers != 3 {
		t.Errorf("default-loaded instance workers = %d, want daemon default 3", def.Workers)
	}
	if explicit.Workers != 2 {
		t.Errorf("explicitly-loaded instance workers = %d, want 2", explicit.Workers)
	}

	var stats statsResponse
	do(t, ts, "GET", "/v1/stats", nil, http.StatusOK, &stats)
	got := map[string]int{}
	for _, in := range stats.Instances {
		got[in.ID] = in.Workers
	}
	if got[def.ID] != 3 || got[explicit.ID] != 2 {
		t.Errorf("stats workers = %v, want {%s:3, %s:2}", got, def.ID, explicit.ID)
	}
}

// TestStatsPhaseSummaries checks the extended /v1/stats payload: the
// instance list plus phase-timing histogram summaries and per-endpoint
// latency snapshots.
func TestStatsPhaseSummaries(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{6, 6}}}, http.StatusCreated, &info)
	do(t, ts, "POST", "/v1/instances/"+info.ID+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "average", Radius: 1}, {Kind: "average", Radius: 1}},
	}, http.StatusOK, nil)

	var stats statsResponse
	do(t, ts, "GET", "/v1/stats", nil, http.StatusOK, &stats)
	if len(stats.Instances) != 1 || stats.Instances[0].ID != info.ID {
		t.Fatalf("instances = %+v", stats.Instances)
	}
	if stats.Solve.Passes["full"] != 1 || stats.Solve.Passes["warm"] != 1 {
		t.Errorf("passes = %+v, want full=1 warm=1", stats.Solve.Passes)
	}
	lp := stats.Solve.Phases["lp_solve"]
	if lp.Count == 0 || lp.P99 < lp.P50 {
		t.Errorf("lp_solve phase summary implausible: %+v", lp)
	}
	if stats.Solve.LPSolves == 0 || stats.Solve.LPPivots == 0 {
		t.Errorf("LP counters empty: %+v", stats.Solve)
	}
	if h := stats.HTTP["solve"]; h.Count != 1 {
		t.Errorf("solve endpoint latency count = %d, want 1", h.Count)
	}
	if stats.Uptime == "" {
		t.Error("uptime missing")
	}
}

// TestPprofGate checks the pprof mux is absent by default and present
// with the flag.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(newServer(nil).handler())
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}

	srv := newServer(nil)
	srv.pprofOn = true
	on := httptest.NewServer(srv.handler())
	defer on.Close()
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d with -pprof", resp.StatusCode)
	}
}
