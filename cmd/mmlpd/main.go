// Command mmlpd is the max-min LP serving daemon: a long-lived HTTP/JSON
// server holding one Solver session per loaded instance, so the
// expensive per-instance state — the CSR incidence index, the radius-R
// ball indexes, the isomorphic-ball solve cache, the LP workspaces — is
// built once and every query after the first is served warm. Weight
// patches re-solve incrementally: only the ball-local LPs that can see a
// touched coefficient run again.
//
// Endpoints:
//
//	GET    /healthz                   liveness + instance count
//	GET    /metrics                   Prometheus text exposition
//	GET    /v1/stats                  instances + phase-timing summaries
//	POST   /v1/instances              load an instance (generator spec or inline JSON)
//	GET    /v1/instances              list loaded instances
//	GET    /v1/instances/{id}         one instance with session stats
//	DELETE /v1/instances/{id}         unload
//	POST   /v1/instances/{id}/solve   batch of safe/average/adaptive/certificate queries
//	POST   /v1/instances/{id}/weights patch a_iv / c_kv coefficients atomically
//	POST   /v1/instances/{id}/topology patch structure (agents/edges join or leave)
//	GET    /v1/cluster                membership + replica sync digests (coordinator only)
//	/debug/pprof/*                    net/http/pprof, only with -pprof
//
// The daemon also runs as a multi-process cluster: `-role=coordinator
// -cluster-addr A -workers N` serves the same HTTP surface but fans
// solves and patches out to N worker processes, each started with
// `-role=worker -join A`, holding shard sessions for a contiguous
// agent partition and exchanging round state over a TCP mesh. Answers
// are bit-identical to a single-process daemon.
//
// Example session:
//
//	mmlpd -addr :8080 &
//	curl -s localhost:8080/v1/instances -d '{"name":"t16","torus":{"dims":[16,16]}}'
//	curl -s localhost:8080/v1/instances/i1/solve \
//	     -d '{"queries":[{"kind":"average","radius":2}]}'
//	curl -s localhost:8080/v1/instances/i1/weights \
//	     -d '{"resources":[{"row":0,"agent":0,"coeff":2.5}]}'
//	curl -s localhost:8080/v1/instances/i1/solve \
//	     -d '{"queries":[{"kind":"average","radius":2}]}'   # incremental
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"maxminlp/internal/backoff"
	"maxminlp/internal/obs"
	"maxminlp/internal/wal"
)

func main() {
	fs := flag.NewFlagSet("mmlpd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	quiet := fs.Bool("quiet", false, "suppress request logging")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceFile := fs.String("trace", "", "append request trace events to this JSONL file")
	slow := fs.Duration("slow", time.Second, "slow-query log threshold (0 disables)")
	scrape := fs.String("scrape", "", "scrape a /metrics URL, validate the exposition, and exit (CI self-check)")
	role := fs.String("role", "single", "process role: single, coordinator or worker")
	clusterAddr := fs.String("cluster-addr", "127.0.0.1:8090", "coordinator: control-plane listen address")
	workers := fs.Int("workers", 2, "coordinator: number of workers to wait for")
	join := fs.String("join", "", "worker: coordinator control-plane address to join")
	data := fs.String("data", "127.0.0.1:0", "worker: data-plane listen address for the round-exchange mesh")
	rejoin := fs.Bool("rejoin", true, "worker: redial the coordinator with backoff after losing it")
	dataDir := fs.String("data-dir", "", "durable state directory (write-ahead log + snapshots); empty disables durability")
	fsyncPol := fs.String("fsync", "interval", "WAL fsync policy: always, interval or never")
	walEvery := fs.Int("wal-snapshot-every", 0, "WAL records between snapshots (0 uses the default)")
	solveWorkers := fs.Int("solve-workers", 0, "default Solver worker count per loaded session (0 = GOMAXPROCS; a load request's workers field overrides)")
	presolve := fs.Bool("presolve", false, "enable ball-LP presolve on every loaded session (value-exact row reduction before dedup fingerprinting)")
	heartbeat := fs.Duration("heartbeat", time.Second, "coordinator: worker heartbeat period (negative disables)")
	formTimeout := fs.Duration("form-timeout", 30*time.Second, "coordinator: how long to wait for the full worker roster before serving degraded")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *scrape != "" {
		os.Exit(scrapeCheck(*scrape))
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *role == "worker" {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "mmlpd: -role=worker requires -join")
			os.Exit(2)
		}
		err := runWorkerOpts(workerOpts{
			join: *join, data: *data, httpAddr: *addr, logf: logf,
			rejoin: *rejoin,
			bo:     backoff.Policy{Base: 200 * time.Millisecond, Max: 5 * time.Second},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *role != "single" && *role != "coordinator" {
		fmt.Fprintf(os.Stderr, "mmlpd: unknown role %q (want single, coordinator or worker)\n", *role)
		os.Exit(2)
	}
	srv := newServer(logf)
	srv.pprofOn = *pprofOn
	srv.solveWorkers = *solveWorkers
	srv.presolve = *presolve
	srv.setSlow(*slow)
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		srv.obs.tracer.SetSink(f)
	}
	if *dataDir != "" {
		pol, err := wal.ParseSyncPolicy(*fsyncPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := srv.openWAL(*dataDir, pol, *walEvery); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	srv.isCoordinator = *role == "coordinator"
	if srv.isCoordinator {
		srv.recovering.Store(true)
	}
	// Serve HTTP before replay and cluster formation: during recovery
	// every API request answers `server/recovering` with a retry hint
	// (never a refused connection), and /healthz and /metrics stay live.
	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("mmlpd listening on %s", httpLn.Addr())
	httpDone := make(chan error, 1)
	go func() { httpDone <- http.Serve(httpLn, srv.handler()) }()
	if srv.wal != nil {
		if err := srv.replayWAL(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if srv.isCoordinator {
		cln, err := net.Listen("tcp", *clusterAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		seeds, err := srv.journalSeeds()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Printf("mmlpd coordinator waiting for %d workers on %s", *workers, cln.Addr())
		c, err := newCluster(cln, clusterConfig{
			target:      *workers,
			hbInterval:  *heartbeat,
			formTimeout: *formTimeout,
			seed:        seeds,
			reconnects:  srv.obs.reconnects,
			inSync:      srv.obs.workersInSync,
		}, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv.setCluster(c)
	}
	srv.recovering.Store(false)
	if err := <-httpDone; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// scrapeCheck fetches a Prometheus exposition and validates it with the
// same strict parser the exposition tests use; CI runs `mmlpd -scrape`
// against a live daemon so an unparseable /metrics fails the build.
func scrapeCheck(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "scrape %s: status %d\n", url, resp.StatusCode)
		return 1
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scrape %s: %v\n", url, err)
		return 1
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("scrape ok: %d metric families, %d samples\n", len(fams), samples)
	return 0
}
