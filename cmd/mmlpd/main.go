// Command mmlpd is the max-min LP serving daemon: a long-lived HTTP/JSON
// server holding one Solver session per loaded instance, so the
// expensive per-instance state — the CSR incidence index, the radius-R
// ball indexes, the isomorphic-ball solve cache, the LP workspaces — is
// built once and every query after the first is served warm. Weight
// patches re-solve incrementally: only the ball-local LPs that can see a
// touched coefficient run again.
//
// Endpoints:
//
//	GET    /healthz                   liveness + instance count
//	GET    /v1/stats                  per-instance session statistics
//	POST   /v1/instances              load an instance (generator spec or inline JSON)
//	GET    /v1/instances              list loaded instances
//	GET    /v1/instances/{id}         one instance with session stats
//	DELETE /v1/instances/{id}         unload
//	POST   /v1/instances/{id}/solve   batch of safe/average/adaptive/certificate queries
//	POST   /v1/instances/{id}/weights patch a_iv / c_kv coefficients atomically
//
// Example session:
//
//	mmlpd -addr :8080 &
//	curl -s localhost:8080/v1/instances -d '{"name":"t16","torus":{"dims":[16,16]}}'
//	curl -s localhost:8080/v1/instances/i1/solve \
//	     -d '{"queries":[{"kind":"average","radius":2}]}'
//	curl -s localhost:8080/v1/instances/i1/weights \
//	     -d '{"resources":[{"row":0,"agent":0,"coeff":2.5}]}'
//	curl -s localhost:8080/v1/instances/i1/solve \
//	     -d '{"queries":[{"kind":"average","radius":2}]}'   # incremental
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	fs := flag.NewFlagSet("mmlpd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	quiet := fs.Bool("quiet", false, "suppress request logging")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := newServer(logf)
	log.Printf("mmlpd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
