package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"maxminlp"
	"maxminlp/internal/httpapi"
)

// do issues one JSON request against the test server and decodes the
// response into out (unless nil).
func do(t *testing.T, ts *httptest.Server, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d, want %d (%s)", method, path, resp.StatusCode, wantStatus, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDaemonLifecycle drives the full serving loop — load, batch solve,
// warm repeat, weight patch, incremental re-solve — and checks the
// steady-state acceptance property: after warm-up, queries and patches
// cause zero CSR or ball-index rebuilds, and the served solutions equal
// the library's direct computation bit-for-bit (JSON float64
// serialisation round-trips exactly).
func TestDaemonLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Name:  "t10",
		Torus: &latticeSpec{Dims: []int{10, 10}},
	}, http.StatusCreated, &info)
	if info.Agents != 100 {
		t.Fatalf("loaded %d agents, want 100", info.Agents)
	}
	base := "/v1/instances/" + info.ID

	// Cold batch: certificate + average + safe, with solutions.
	var results []solveResult
	do(t, ts, "POST", base+"/solve", solveRequest{
		IncludeX: true,
		Queries: []solveQuery{
			{Kind: "certificate", Radius: 1},
			{Kind: "average", Radius: 1},
			{Kind: "safe"},
		},
	}, http.StatusOK, &results)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[1].Omega <= 0 || len(results[1].X) != 100 {
		t.Fatalf("average result implausible: %+v", results[1])
	}

	// The served average must equal the library's own computation.
	in, _ := maxminlp.Torus([]int{10, 10}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	ref, err := maxminlp.LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.X {
		if results[1].X[v] != ref.X[v] {
			t.Fatalf("served X[%d] = %v, want %v", v, results[1].X[v], ref.X[v])
		}
	}

	// Warm repeat: no new structure builds, a warm hit, identical omega.
	var statsBefore instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &statsBefore)
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "average", Radius: 1}},
	}, http.StatusOK, &results)
	var statsWarm instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &statsWarm)
	if statsWarm.Session.BallIndexBuilds != statsBefore.Session.BallIndexBuilds ||
		statsWarm.Session.CSRBuilds != statsBefore.Session.CSRBuilds {
		t.Errorf("warm query rebuilt structures: %+v -> %+v", statsBefore.Session, statsWarm.Session)
	}
	if statsWarm.Session.WarmHits == 0 {
		t.Error("warm query not served from retained state")
	}

	// Weight patch + incremental re-solve; steady state must still not
	// rebuild the CSR or any ball index.
	patch := weightsRequest{
		Resources: []coeffPatch{{Row: 3, Agent: pickAgent(in, 3, true), Coeff: 2.5}},
		Parties:   []coeffPatch{{Row: 7, Agent: pickAgent(in, 7, false), Coeff: 0.25}},
	}
	var wresp weightsResponse
	do(t, ts, "POST", base+"/weights", patch, http.StatusOK, &wresp)
	if wresp.Applied != 2 {
		t.Fatalf("applied %d deltas, want 2", wresp.Applied)
	}
	do(t, ts, "POST", base+"/solve", solveRequest{
		IncludeX: true,
		Queries:  []solveQuery{{Kind: "average", Radius: 1}},
	}, http.StatusOK, &results)

	mut, err := in.UpdateCoeffs(
		[]maxminlp.CoeffUpdate{{Row: 3, Agent: patch.Resources[0].Agent, Coeff: 2.5}},
		[]maxminlp.CoeffUpdate{{Row: 7, Agent: patch.Parties[0].Agent, Coeff: 0.25}},
	)
	if err != nil {
		t.Fatal(err)
	}
	mref, err := maxminlp.LocalAverage(mut, maxminlp.NewGraph(mut, maxminlp.GraphOptions{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range mref.X {
		if results[0].X[v] != mref.X[v] {
			t.Fatalf("post-patch X[%d] = %v, want %v", v, results[0].X[v], mref.X[v])
		}
	}
	var statsFinal instanceInfo
	do(t, ts, "GET", base, nil, http.StatusOK, &statsFinal)
	if statsFinal.Session.BallIndexBuilds != statsBefore.Session.BallIndexBuilds ||
		statsFinal.Session.CSRBuilds != statsBefore.Session.CSRBuilds {
		t.Errorf("steady-state patch/solve rebuilt structures: %+v -> %+v",
			statsBefore.Session, statsFinal.Session)
	}
	if statsFinal.Session.IncrementalSolves != 1 {
		t.Errorf("IncrementalSolves = %d, want 1", statsFinal.Session.IncrementalSolves)
	}
	if n := statsFinal.Session.AgentsResolved; n == 0 || n >= 100 {
		t.Errorf("incremental pass resolved %d agents, want a proper subset", n)
	}

	// Adaptive rides the same session.
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "adaptive", Target: 3.0, MaxRadius: 4}},
	}, http.StatusOK, &results)
	if results[0].Achieved == nil || results[0].Radius < 1 {
		t.Fatalf("adaptive result implausible: %+v", results[0])
	}

	// List and delete.
	var list listResponse
	do(t, ts, "GET", "/v1/instances", nil, http.StatusOK, &list)
	if list.SchemaVersion != httpapi.SchemaVersion {
		t.Fatalf("list schemaVersion = %d, want %d", list.SchemaVersion, httpapi.SchemaVersion)
	}
	if len(list.Instances) != 1 || list.Instances[0].Queries == 0 {
		t.Fatalf("list = %+v", list)
	}
	do(t, ts, "DELETE", base, nil, http.StatusNoContent, nil)
	do(t, ts, "GET", base, nil, http.StatusNotFound, nil)
}

// pickAgent returns the first agent in the support of the given row.
func pickAgent(in *maxminlp.Instance, row int, resource bool) int {
	if resource {
		return in.Resource(row)[0].Agent
	}
	return in.Party(row)[0].Agent
}

// TestDaemonInlineInstanceAndErrors covers the inline-JSON source, the
// random generator, and the error paths.
func TestDaemonInlineInstanceAndErrors(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	// Inline instance JSON round-trips through the daemon.
	in, _ := maxminlp.Torus([]int{6}, maxminlp.LatticeOptions{})
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Instance: raw}, http.StatusCreated, &info)
	if info.Agents != 6 {
		t.Fatalf("inline instance has %d agents, want 6", info.Agents)
	}

	do(t, ts, "POST", "/v1/instances", loadRequest{
		Random: &randomSpec{Agents: 20, Resources: 15, Parties: 8, MaxVI: 3, MaxVK: 3, Seed: 4},
	}, http.StatusCreated, &info)

	var errResp httpapi.ErrorEnvelope
	// No source / two sources.
	do(t, ts, "POST", "/v1/instances", loadRequest{}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", "/v1/instances", loadRequest{
		Torus:  &latticeSpec{Dims: []int{4}},
		Random: &randomSpec{Agents: 5},
	}, http.StatusBadRequest, &errResp)
	// Unknown instance.
	do(t, ts, "POST", "/v1/instances/nope/solve", solveRequest{
		Queries: []solveQuery{{Kind: "safe"}},
	}, http.StatusNotFound, &errResp)
	// Unknown kind, empty batch, bad radius.
	base := "/v1/instances/" + info.ID
	do(t, ts, "POST", base+"/solve", solveRequest{Queries: []solveQuery{{Kind: "simplex"}}}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/solve", solveRequest{}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/solve", solveRequest{Queries: []solveQuery{{Kind: "average", Radius: -2}}}, http.StatusBadRequest, &errResp)
	// Invalid weight patch: nonexistent entry, and empty patch.
	do(t, ts, "POST", base+"/weights", weightsRequest{
		Resources: []coeffPatch{{Row: 0, Agent: 9999, Coeff: 1}},
	}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/weights", weightsRequest{}, http.StatusBadRequest, &errResp)
	// Malformed generator specs must be a 400, not a handler panic.
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{0}}}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{1 << 20, 1 << 20}}}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", "/v1/instances", loadRequest{Random: &randomSpec{Agents: 5}}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", "/v1/instances", loadRequest{Instance: []byte(`{"agents":-1}`)}, http.StatusBadRequest, &errResp)
	// Radii beyond the serving cap are rejected (they would pin a
	// retained ball index per radius for the session's lifetime).
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "certificate", Radius: maxServedRadius + 1}},
	}, http.StatusBadRequest, &errResp)
	do(t, ts, "POST", base+"/solve", solveRequest{
		Queries: []solveQuery{{Kind: "adaptive", Target: 1.5, MaxRadius: 10000}},
	}, http.StatusBadRequest, &errResp)

	// Health.
	var health healthResponse
	do(t, ts, "GET", "/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.Instances != 2 {
		t.Fatalf("health = %+v", health)
	}
}

// TestDaemonConcurrentClients hammers one instance from several clients
// with mixed solves and patches; afterwards the served solution must
// equal the library's cold computation on the final weights.
func TestDaemonConcurrentClients(t *testing.T) {
	ts := httptest.NewServer(newServer(nil).handler())
	defer ts.Close()

	var info instanceInfo
	do(t, ts, "POST", "/v1/instances", loadRequest{Torus: &latticeSpec{Dims: []int{8, 8}}}, http.StatusCreated, &info)
	base := "/v1/instances/" + info.ID
	in, _ := maxminlp.Torus([]int{8, 8}, maxminlp.LatticeOptions{})

	done := make(chan error, 4)
	for c := 0; c < 4; c++ {
		go func(c int) {
			for iter := 0; iter < 6; iter++ {
				var err error
				if c%2 == 0 {
					err = post(ts, base+"/solve", solveRequest{Queries: []solveQuery{{Kind: "average", Radius: 1}}})
				} else {
					row := c*7 + iter
					err = post(ts, base+"/weights", weightsRequest{
						Resources: []coeffPatch{{Row: row, Agent: in.Resource(row)[0].Agent, Coeff: 1 + float64(iter)/3}},
					})
				}
				if err != nil {
					done <- fmt.Errorf("client %d iter %d: %w", c, iter, err)
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < 4; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// post issues a request and only checks for a 2xx status.
func post(ts *httptest.Server, path string, body any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, msg.String())
	}
	return nil
}
