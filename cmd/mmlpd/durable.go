package main

import (
	"encoding/json"
	"fmt"
	"time"

	"maxminlp"
	"maxminlp/internal/wal"
	"maxminlp/internal/wire"
)

// WAL record types. Each record's body is the exact request body the
// daemon acknowledged — replay re-applies it through the same
// conversion code that served it, which is what makes a restarted
// daemon bit-identical to the one that crashed.
const (
	walRecLoad     = "load"
	walRecUnload   = "unload"
	walRecWeights  = "weights"
	walRecTopology = "topology"
)

// walLoad is the body of a load record: the instance's canonical JSON
// encoding (round-trips float64 exactly) plus the session options and
// identity the handler assigned.
type walLoad struct {
	Seq                    int             `json:"seq"`
	Name                   string          `json:"name,omitempty"`
	Loaded                 time.Time       `json:"loaded"`
	Instance               json.RawMessage `json:"instance"`
	CollaborationOblivious bool            `json:"collaborationOblivious,omitempty"`
	Workers                int             `json:"workers,omitempty"`
}

// walState is the snapshot payload: every loaded instance's canonical
// state, enough to rebuild the sessions without replaying history.
type walState struct {
	NextID    int           `json:"nextId"`
	Instances []walInstance `json:"instances"`
}

type walInstance struct {
	ID string `json:"id"`
	walLoad
}

// defaultWALSnapshotEvery bounds replay work: a snapshot is cut after
// this many appends, so recovery replays at most one snapshot plus one
// batch of records.
const defaultWALSnapshotEvery = 256

// openWAL opens (or creates) the data directory's log and stages the
// recovered snapshot and records for replayWAL. The server answers
// `server/recovering` until the replay finishes.
func (s *server) openWAL(dir string, policy wal.SyncPolicy, snapshotEvery int) error {
	if snapshotEvery <= 0 {
		snapshotEvery = defaultWALSnapshotEvery
	}
	log, snap, recs, err := wal.Open(dir, wal.Options{
		Policy:   policy,
		OnAppend: func() { s.obs.walAppends.Inc() },
		OnFsync:  func(d time.Duration) { s.obs.walFsync.ObserveDuration(d) },
	})
	if err != nil {
		return fmt.Errorf("opening WAL in %s: %w", dir, err)
	}
	s.wal, s.walSnap, s.walRecs, s.walEvery = log, snap, recs, snapshotEvery
	s.recovering.Store(true)
	return nil
}

// replayWAL rebuilds the server's instances from the staged snapshot
// and record suffix, in commit order. Every apply goes through the same
// conversion helpers as the live handlers, so the rebuilt sessions are
// bit-identical to the acknowledged state — the restart bit-identity
// tests pin this against golden traces.
func (s *server) replayWAL() error {
	start := time.Now()
	// The recovering gate keeps mutating handlers out, but /healthz
	// still reads the instance map — hold s.mu across the rebuild.
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, recs := s.walSnap, s.walRecs
	s.walSnap, s.walRecs = nil, nil
	if snap != nil {
		var st walState
		if err := json.Unmarshal(snap.State, &st); err != nil {
			return fmt.Errorf("decoding WAL snapshot at LSN %d: %w", snap.LSN, err)
		}
		s.nextID = st.NextID
		for _, wi := range st.Instances {
			if err := s.reviveInstance(wi.ID, wi.walLoad); err != nil {
				return fmt.Errorf("snapshot instance %s: %w", wi.ID, err)
			}
		}
	}
	for _, rec := range recs {
		if err := s.replayRecord(rec); err != nil {
			return fmt.Errorf("replaying LSN %d (%s %s): %w", rec.LSN, rec.Type, rec.ID, err)
		}
	}
	s.obs.instances.Set(float64(len(s.instances)))
	s.obs.recoverySec.Set(time.Since(start).Seconds())
	s.logf("mmlpd: recovered %d instances (%d log records) in %s; WAL at LSN %d digest %s",
		len(s.instances), len(recs), time.Since(start).Round(time.Millisecond), s.wal.LSN(), s.wal.Digest())
	return nil
}

// reviveInstance rebuilds one managed session from its canonical state.
func (s *server) reviveInstance(id string, ld walLoad) error {
	in := new(maxminlp.Instance)
	if err := json.Unmarshal(ld.Instance, in); err != nil {
		return fmt.Errorf("instance JSON: %w", err)
	}
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{CollaborationOblivious: ld.CollaborationOblivious})
	if ld.Workers > 0 {
		sess.SetWorkers(ld.Workers)
	} else if s.solveWorkers > 0 {
		// The WAL records the request verbatim; a session loaded under
		// the daemon default recovers under the (current) daemon default.
		sess.SetWorkers(s.solveWorkers)
	}
	sess.SetObs(s.obs.solve)
	m := &managed{
		ID: id, Name: ld.Name, Loaded: ld.Loaded, Agents: in.NumAgents(),
		seq: ld.Seq, sess: sess,
		oblivious: ld.CollaborationOblivious, workers: ld.Workers,
	}
	s.instances[id] = m
	if ld.Seq > s.nextID {
		s.nextID = ld.Seq
	}
	return nil
}

func (s *server) replayRecord(rec wal.Record) error {
	switch rec.Type {
	case walRecLoad:
		var ld walLoad
		if err := json.Unmarshal(rec.Body, &ld); err != nil {
			return err
		}
		return s.reviveInstance(rec.ID, ld)
	case walRecUnload:
		delete(s.instances, rec.ID)
		return nil
	case walRecWeights:
		m, ok := s.instances[rec.ID]
		if !ok {
			return fmt.Errorf("no such instance")
		}
		var req weightsRequest
		if err := json.Unmarshal(rec.Body, &req); err != nil {
			return err
		}
		return m.sess.UpdateWeights(weightDeltas(&req))
	case walRecTopology:
		m, ok := s.instances[rec.ID]
		if !ok {
			return fmt.Errorf("no such instance")
		}
		var req topologyRequest
		if err := json.Unmarshal(rec.Body, &req); err != nil {
			return err
		}
		ups := make([]maxminlp.TopoUpdate, len(req.Ops))
		for i, spec := range req.Ops {
			up, err := topoUpdate(spec)
			if err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			ups[i] = up
		}
		_, err := m.sess.UpdateTopology(ups)
		return err
	default:
		return fmt.Errorf("unknown WAL record type %q", rec.Type)
	}
}

// weightDeltas converts a weights request, shared by the live handler,
// the WAL replay and (indirectly) the worker replicas — one conversion,
// one semantics.
func weightDeltas(req *weightsRequest) []maxminlp.WeightDelta {
	deltas := make([]maxminlp.WeightDelta, 0, len(req.Resources)+len(req.Parties))
	for _, p := range req.Resources {
		deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.ResourceWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
	}
	for _, p := range req.Parties {
		deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.PartyWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
	}
	return deltas
}

// walAppend logs one committed operation. The caller holds commitMu
// shared (and the instance lock where one exists), so the append is
// ordered identically to the apply — "acked ⇒ logged". A disk failure
// degrades durability, not availability: it is logged loudly and the
// daemon keeps serving.
func (s *server) walAppend(typ, id string, body any) {
	if s.wal == nil {
		return
	}
	if _, err := s.wal.Append(typ, id, body); err != nil {
		s.logf("mmlpd: WAL append %s %s FAILED (durability degraded): %v", typ, id, err)
	}
}

// maybeSnapshot cuts a snapshot once enough records accumulated since
// the last one. It takes commitMu exclusively — no handler can be
// between its apply and its append — so the serialized state and the
// log position agree exactly.
func (s *server) maybeSnapshot() {
	if s.wal == nil || s.wal.AppendsSinceSnapshot() < s.walEvery {
		return
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.wal.AppendsSinceSnapshot() < s.walEvery {
		return // another handler snapshotted while we waited
	}
	st, err := s.snapshotState()
	if err != nil {
		s.logf("mmlpd: WAL snapshot state: %v", err)
		return
	}
	if err := s.wal.WriteSnapshot(st); err != nil {
		s.logf("mmlpd: WAL snapshot write: %v", err)
		return
	}
	s.logf("mmlpd: WAL snapshot at LSN %d (%d instances)", s.wal.LSN(), len(st.Instances))
}

// snapshotState serializes every instance's canonical state. The caller
// holds commitMu exclusively; instance locks are still taken because
// solves (which don't commit) run outside commitMu.
func (s *server) snapshotState() (*walState, error) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	nextID := s.nextID
	s.mu.Unlock()
	sortManaged(ms)
	st := &walState{NextID: nextID, Instances: make([]walInstance, 0, len(ms))}
	for _, m := range ms {
		m.mu.Lock()
		raw, err := json.Marshal(m.sess.Instance())
		m.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("instance %s: %w", m.ID, err)
		}
		st.Instances = append(st.Instances, walInstance{
			ID: m.ID,
			walLoad: walLoad{
				Seq: m.seq, Name: m.Name, Loaded: m.Loaded, Instance: raw,
				CollaborationOblivious: m.oblivious, Workers: m.workers,
			},
		})
	}
	return st, nil
}

// journalSeeds converts the replayed instances into the cluster's
// initial patch journal, so workers joining a restarted coordinator
// catch up exactly like rejoiners.
func (s *server) journalSeeds() ([]wire.Load, error) {
	s.mu.Lock()
	ms := make([]*managed, 0, len(s.instances))
	for _, m := range s.instances {
		ms = append(ms, m)
	}
	s.mu.Unlock()
	sortManaged(ms)
	seeds := make([]wire.Load, 0, len(ms))
	for _, m := range ms {
		raw, err := json.Marshal(m.sess.Instance())
		if err != nil {
			return nil, fmt.Errorf("instance %s: %w", m.ID, err)
		}
		seeds = append(seeds, wire.Load{
			ID: m.ID, Instance: raw,
			CollaborationOblivious: m.oblivious, Workers: m.workers,
		})
	}
	return seeds, nil
}
