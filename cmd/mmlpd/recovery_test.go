package main

import (
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"maxminlp"
	"maxminlp/internal/backoff"
	"maxminlp/internal/faultwire"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/mmlpclient"
	"maxminlp/internal/obs"
)

// waitInSync polls the coordinator until the roster reaches the target
// and every instance's replica digests match — the cluster's own
// definition of healed.
func waitInSync(t *testing.T, cl *mmlpclient.Client, target int, within time.Duration) *httpapi.ClusterResponse {
	t.Helper()
	deadline := time.Now().Add(within)
	var last *httpapi.ClusterResponse
	for time.Now().Before(deadline) {
		snap, err := cl.Cluster()
		if err == nil {
			last = snap
			ok := len(snap.Workers) == target && !snap.Degraded
			for _, ci := range snap.Instances {
				ok = ok && ci.InSync
			}
			if ok {
				return snap
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster never healed to %d in-sync workers; last snapshot: %+v", target, last)
	return nil
}

// TestClusterLateJoinCatchUp: a coordinator whose formation times out
// serves degraded, accepts loads and patches (journaling them), and a
// worker arriving later catches the whole history up from the journal
// and is admitted only once its digests verify — after which solves are
// bit-identical to the single-process core.
func TestClusterLateJoinCatchUp(t *testing.T) {
	quiet := func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := newCluster(ln, clusterConfig{
		target:      2,
		formTimeout: 50 * time.Millisecond, // no workers yet: form degraded immediately
		hbInterval:  25 * time.Millisecond,
		hbMisses:    2,
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := newServer(nil)
	srv.isCoordinator = true
	srv.cluster = c
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := mmlpclient.New(ts.URL, nil)

	// Mutations succeed while fully degraded; partitioned solves answer
	// the explicit degraded envelope.
	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{5, 5}}})
	if err != nil {
		t.Fatalf("load while degraded: %v", err)
	}
	if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
		Resources: []httpapi.CoeffPatch{{Row: 0, Agent: 0, Coeff: 2.5}},
	}); err != nil {
		t.Fatalf("patch while degraded: %v", err)
	}
	if _, err := cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: []httpapi.TopoOp{
		{Op: "addAgent"},
		{Op: "addEdge", Row: 0, Agent: 25, Coeff: 1.5},
	}}); err != nil {
		t.Fatalf("topology while degraded: %v", err)
	}

	// Two workers arrive late — every patch above reaches them through
	// the journal, not the fan-out.
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			errc <- runWorker(ln.Addr().String(), "127.0.0.1:0", "", quiet)
		}()
	}
	waitInSync(t, cl, 2, 15*time.Second)

	// The caught-up cluster answers bit-identically to a fresh
	// single-process session over the same mutated instance.
	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	ref := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	if err := ref.UpdateWeights([]maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 0, Agent: 0, Coeff: 2.5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.UpdateTopology([]maxminlp.TopoUpdate{
		maxminlp.AddAgent(), maxminlp.AddResourceEdge(0, 25, 1.5),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true, Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := ref.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "late-join", res[0].X, avg.X)

	ts.Close()
	c.Close()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Errorf("worker exit: %v", err)
		}
	}
}

// TestWorkerRejoinAfterSever: a worker whose control connection dies
// mid-life redials under backoff, re-Hellos with its replica digests,
// catches up what it missed, and is readmitted — the reconnect counter
// proves the healing path (not the formation path) ran, and the healed
// cluster still solves bit-identically.
func TestWorkerRejoinAfterSever(t *testing.T) {
	quiet := func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reconnects := obs.NewRegistry().Counter("test_reconnects", "")
	for i := 0; i < 2; i++ {
		go func() {
			// Rejoin workers outlive the test server; they are torn down
			// with the process.
			_ = runWorkerOpts(workerOpts{
				join: ln.Addr().String(), data: "127.0.0.1:0", logf: quiet,
				rejoin: true,
				bo:     backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
			})
		}()
	}
	c, err := newCluster(ln, clusterConfig{
		target:     2,
		hbInterval: 25 * time.Millisecond,
		hbMisses:   2,
		reconnects: reconnects,
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := newServer(nil)
	srv.isCoordinator = true
	srv.cluster = c
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := mmlpclient.New(ts.URL, nil)

	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
		Resources: []httpapi.CoeffPatch{{Row: 3, Agent: in55ResAgent(t, 3), Coeff: 1.75}},
	}); err != nil {
		t.Fatal(err)
	}

	// Sever one worker's control link, then immediately patch again:
	// the fan-out either reaches the survivor only (the rejoiner must
	// catch the patch up from the journal) or races the eviction — both
	// must converge.
	severWorker(t, c, 0)
	if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
		Resources: []httpapi.CoeffPatch{{Row: 5, Agent: in55ResAgent(t, 5), Coeff: 0.6}},
	}); err != nil {
		t.Fatal(err)
	}

	waitInSync(t, cl, 2, 15*time.Second)
	if reconnects.Value() == 0 {
		t.Fatal("healed without incrementing the reconnect counter — the rejoin path did not run")
	}

	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	ref := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	if err := ref.UpdateWeights([]maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 3, Agent: in55ResAgent(t, 3), Coeff: 1.75},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeights([]maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 5, Agent: in55ResAgent(t, 5), Coeff: 0.6},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true,
		Queries:  []httpapi.SolveQuery{{Kind: "safe"}, {Kind: "average", Radius: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "rejoined/safe", res[0].X, ref.Safe())
	avg, err := ref.LocalAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "rejoined/average", res[1].X, avg.X)
}

func in55ResAgent(t *testing.T, row int) int {
	t.Helper()
	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	return in.Resource(row)[0].Agent
}

// TestClusterChaosControlPlane runs the coordinator's control plane
// through the fault injector — duplicated frames, delays, connections
// torn mid-frame — under a patch storm with rejoin-enabled workers.
// Once the faults stop, the cluster must converge to a fully in-sync
// roster whose answers are bit-identical to a clean single-process
// solve of the same patch sequence: dup suppression, retries and
// journal catch-up together make the chaos invisible to results.
func TestClusterChaosControlPlane(t *testing.T) {
	quiet := func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultwire.NewInjector(faultwire.Faults{
		Seed:          42,
		Dup:           0.15,
		Delay:         0.25,
		MaxDelay:      2 * time.Millisecond,
		CloseMidFrame: 0.02,
	})
	for i := 0; i < 2; i++ {
		go func() {
			_ = runWorkerOpts(workerOpts{
				join: ln.Addr().String(), data: "127.0.0.1:0", logf: quiet,
				rejoin: true,
				bo:     backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			})
		}()
	}
	c, err := newCluster(inj.WrapListener(ln), clusterConfig{
		target:      2,
		hbInterval:  25 * time.Millisecond,
		hbMisses:    3,
		formTimeout: 10 * time.Second,
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := newServer(nil)
	srv.isCoordinator = true
	srv.cluster = c
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := mmlpclient.New(ts.URL, nil)

	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	ref := maxminlp.NewSolver(in, maxminlp.GraphOptions{})

	// The storm: a patch sequence long enough that dups, delays and
	// torn connections all fire (the injector is seeded — the schedule
	// is reproducible). Every patch the daemon acks goes to the
	// reference too.
	for i := 0; i < 12; i++ {
		row := i % 5
		coeff := 0.5 + float64(i)/8
		agent := in.Resource(row)[0].Agent
		if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
			Resources: []httpapi.CoeffPatch{{Row: row, Agent: agent, Coeff: coeff}},
		}); err != nil {
			t.Fatalf("patch %d under chaos: %v", i, err)
		}
		if err := ref.UpdateWeights([]maxminlp.WeightDelta{
			{Kind: maxminlp.ResourceWeight, Row: row, Agent: agent, Coeff: coeff},
		}); err != nil {
			t.Fatal(err)
		}
	}

	drops, delays, dups, tears := inj.Stats()
	if delays+dups+tears+drops == 0 {
		t.Fatal("the injector never fired — the chaos test tested nothing")
	}
	inj.Disable()

	waitInSync(t, cl, 2, 20*time.Second)
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true, Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := ref.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "post-chaos", res[0].X, avg.X)
	t.Logf("chaos injected: %d drops, %d delays, %d dups, %d tears", drops, delays, dups, tears)
}
