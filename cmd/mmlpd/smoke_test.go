package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"maxminlp"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/mmlpclient"
)

// freePort reserves a loopback port by listening and releasing it; the
// gap before the daemon rebinds is harmless on a test host.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterProcessSmoke is the end-to-end deployment check CI runs as
// its cluster job: it builds the real mmlpd binary, boots a coordinator
// and two workers as separate OS processes on loopback TCP, replays a
// solve trace with interleaved patches, compares every solution vector
// bit-for-bit against a single-process session, and finally turns the
// binary's own -scrape gate on all three /metrics endpoints.
func TestClusterProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mmlpd")
	if out, err := exec.Command("go", "build", "-o", bin, "maxminlp/cmd/mmlpd").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	coordHTTP := freePort(t)
	coordCtl := freePort(t)
	worker1 := freePort(t)
	worker2 := freePort(t)

	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	start("-role=coordinator", "-addr", coordHTTP, "-cluster-addr", coordCtl, "-workers", "2", "-quiet")
	start("-role=worker", "-join", coordCtl, "-addr", worker1, "-quiet")
	start("-role=worker", "-join", coordCtl, "-addr", worker2, "-quiet")

	cl := mmlpclient.New("http://"+coordHTTP, nil)
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := cl.Health()
		if err == nil && h.Role == "coordinator" && h.Workers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not come up: %+v, %v", h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The golden trace: load, solve, patch weights, solve, patch
	// topology, solve — mirrored on an in-process reference session.
	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{6, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := maxminlp.Torus([]int{6, 6}, maxminlp.LatticeOptions{})
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})

	solveBoth := func(stage string) {
		res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
			IncludeX: true,
			Queries:  []httpapi.SolveQuery{{Kind: "average", Radius: 2}},
		})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		ref, err := sess.LocalAverage(2)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, stage, res[0].X, ref.X)
		if res[0].Certificate != ref.RatioCertificate() {
			t.Fatalf("%s: certificate %v, want %v", stage, res[0].Certificate, ref.RatioCertificate())
		}
	}
	solveBoth("initial")

	agent := in.Resource(3)[0].Agent
	if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
		Resources: []httpapi.CoeffPatch{{Row: 3, Agent: agent, Coeff: 1.75}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.UpdateWeights([]maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 3, Agent: agent, Coeff: 1.75},
	}); err != nil {
		t.Fatal(err)
	}
	solveBoth("after weights")

	n := sess.Instance().NumAgents()
	if _, err := cl.PatchTopology(info.ID, &httpapi.TopologyRequest{Ops: []httpapi.TopoOp{
		{Op: "addAgent"},
		{Op: "addEdge", Row: 3, Agent: n, Coeff: 0.5},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.UpdateTopology([]maxminlp.TopoUpdate{
		maxminlp.AddAgent(),
		maxminlp.AddResourceEdge(3, n, 0.5),
	}); err != nil {
		t.Fatal(err)
	}
	solveBoth("after topology")

	snap, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Instances) != 1 || !snap.Instances[0].InSync {
		t.Fatalf("cluster snapshot after trace: %+v", snap)
	}

	// The -scrape gate against all three processes' expositions.
	for _, addr := range []string{coordHTTP, worker1, worker2} {
		url := fmt.Sprintf("http://%s/metrics", addr)
		if out, err := exec.Command(bin, "-scrape", url).CombinedOutput(); err != nil {
			t.Fatalf("scrape %s: %v\n%s", url, err, out)
		}
	}
}
