package main

import (
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"maxminlp"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/mmlpclient"
)

// freeAddr reserves an OS-assigned port and releases it for a child
// process to rebind. The small race window is acceptable for a smoke
// test that owns the whole machine's test slice.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCrashRecoverySmoke is the end-to-end durability drill with real
// processes and real SIGKILL: build the daemon, form a 2-worker
// cluster with a WAL-backed coordinator, kill a worker mid-patch-storm
// (its replacement rejoins and catches up), then kill the coordinator
// itself and restart it from the data directory. The healed cluster
// must report every replica in sync and solve both the golden corpus
// and the patched instance bit-identically to a clean single-process
// reference.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash smoke skipped in -short mode")
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "mmlpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building mmlpd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(scratch, "state")
	httpAddr, clusterAddr := freeAddr(t), freeAddr(t)

	logs, err := os.Create(filepath.Join(scratch, "procs.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logs.Close()
	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = logs, logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	coordArgs := []string{
		"-role=coordinator", "-addr", httpAddr, "-cluster-addr", clusterAddr,
		"-workers", "2", "-data-dir", dataDir, "-fsync", "always",
		"-heartbeat", "100ms", "-quiet",
	}
	workerArgs := []string{"-role=worker", "-join", clusterAddr, "-addr", "127.0.0.1:0", "-quiet"}

	coord := spawn(coordArgs...)
	spawn(workerArgs...)
	w2 := spawn(workerArgs...)
	cl := mmlpclient.New("http://"+httpAddr, nil)
	waitInSync(t, cl, 2, 30*time.Second)

	// One golden-corpus instance pins the answers to the committed PR 5
	// traces; one generated instance takes the patch storm, mirrored
	// onto an in-process reference solver.
	golden := goldenFamilies()[0] // torus6x6
	rawGolden, err := json.Marshal(golden.in)
	if err != nil {
		t.Fatal(err)
	}
	gInfo, err := cl.Load(&httpapi.LoadRequest{Name: golden.name, Instance: rawGolden})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PatchTopology(gInfo.ID, &httpapi.TopologyRequest{
		Ops: goldenChurnOps(golden.in),
	}); err != nil {
		t.Fatal(err)
	}
	sInfo, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	refIn, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	ref := maxminlp.NewSolver(refIn, maxminlp.GraphOptions{})

	// Patch storm with a SIGKILL'd worker in the middle of it: patches
	// must keep committing (degraded serving, never a refused write),
	// and the replacement worker catches the missed ones up from the
	// coordinator's journal.
	for i := 0; i < 10; i++ {
		if i == 4 {
			w2.Process.Kill()
			w2.Wait()
		}
		if i == 7 {
			spawn(workerArgs...)
		}
		row := i % refIn.NumResources()
		agent := refIn.Resource(row)[0].Agent
		coeff := 1 + float64(i)/8
		if _, err := cl.PatchWeights(sInfo.ID, &httpapi.WeightsRequest{
			Resources: []httpapi.CoeffPatch{{Row: row, Agent: agent, Coeff: coeff}},
		}); err != nil {
			t.Fatalf("patch %d: %v", i, err)
		}
		if err := ref.UpdateWeights([]maxminlp.WeightDelta{
			{Kind: maxminlp.ResourceWeight, Row: row, Agent: agent, Coeff: coeff},
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitInSync(t, cl, 2, 60*time.Second)

	// Now the coordinator itself dies without warning. Its restart
	// replays the WAL, re-seeds the worker journal, and readmits the
	// surviving workers when their digest handshakes verify.
	coord.Process.Kill()
	coord.Wait()
	spawn(coordArgs...)
	waitInSync(t, cl, 2, 60*time.Second)

	res, err := cl.Solve(gInfo.ID, &httpapi.SolveRequest{
		IncludeX: true,
		Queries:  []httpapi.SolveQuery{{Kind: "average", Radius: 1}, {Kind: "average", Radius: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameHex(t, "reborn "+golden.name+"/R1", res[0].X, goldenX(t, golden.name, 1))
	sameHex(t, "reborn "+golden.name+"/R2", res[1].X, goldenX(t, golden.name, 2))

	res, err = cl.Solve(sInfo.ID, &httpapi.SolveRequest{
		IncludeX: true,
		Queries:  []httpapi.SolveQuery{{Kind: "safe"}, {Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "reborn storm/safe", res[0].X, ref.Safe())
	avg, err := ref.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "reborn storm/average", res[1].X, avg.X)
}
