package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"maxminlp"
	"maxminlp/internal/dist"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
	"maxminlp/internal/wire"
)

// worker hosts the partition-slice side of a cluster: a full replica
// session per instance (the partitioned round loop reads the replicated
// record ROMs, so only agent-id lists cross the wire), driven entirely
// by the coordinator's control connection. The control loop is strictly
// FIFO — patches and solves apply in exactly the order the coordinator
// linearised them, which is what keeps every replica bit-identical.
type worker struct {
	self    int
	members int
	mesh    *dist.TCPMesh
	conn    net.Conn
	logf    func(format string, args ...any)

	// replicas is written only by the FIFO control loop; the mutex exists
	// for the HTTP goroutine's reads.
	mu       sync.Mutex
	replicas map[string]*replica

	reg      *obs.Registry
	ops      func(typ string) *obs.Counter
	started  time.Time
	solveSec *obs.Histogram
}

// replica is one instance's worker-side state: the session (for
// SafeRange and patch application) and the session-backed network the
// partitioned runs execute on. The network is resynced after every
// patch — the ROMs bake coefficients in, so weight patches invalidate
// them just as surely as topology does.
type replica struct {
	sess *maxminlp.Solver
	nw   *maxminlp.Network
}

// runWorker joins a cluster and serves it until the coordinator goes
// away. httpAddr serves the worker's own /healthz and /metrics.
func runWorker(joinAddr, dataAddr, httpAddr string, logf func(string, ...any)) error {
	ln, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("data listener: %w", err)
	}
	conn, err := dialControl(joinAddr, 30*time.Second)
	if err != nil {
		return fmt.Errorf("joining %s: %w", joinAddr, err)
	}
	if err := wire.WriteMsg(conn, wire.TypeHello, &wire.Hello{DataAddr: ln.Addr().String()}); err != nil {
		return err
	}
	env, err := wire.ReadMsg(conn)
	if err != nil {
		return fmt.Errorf("awaiting assignment: %w", err)
	}
	if env.Type != wire.TypeAssign {
		return fmt.Errorf("expected %s, got %s", wire.TypeAssign, env.Type)
	}
	var asg wire.Assign
	if err := env.Decode(&asg); err != nil {
		return err
	}
	mesh, err := dist.NewTCPMesh(asg.Self, asg.Peers, ln)
	if err != nil {
		return fmt.Errorf("building mesh as member %d: %w", asg.Self, err)
	}
	if err := wire.WriteMsg(conn, wire.TypeOK, nil); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	w := &worker{
		self: asg.Self, members: len(asg.Peers), mesh: mesh, conn: conn,
		replicas: make(map[string]*replica),
		logf:     logf,
		reg:      reg,
		started:  time.Now(),
		solveSec: reg.Histogram("mmlpd_worker_solve_seconds",
			"Partition-slice solve latency.", obs.DefLatencyBuckets),
	}
	w.ops = func(typ string) *obs.Counter {
		return reg.Counter("mmlpd_worker_control_ops_total",
			"Control-plane operations served, by type.", obs.L("type", typ))
	}
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("http listener: %w", err)
		}
		logf("mmlpd: worker %d serving http on %s", w.self, hln.Addr())
		go func() {
			if err := http.Serve(hln, w.httpHandler()); err != nil {
				logf("mmlpd: worker http: %v", err)
			}
		}()
	}
	logf("mmlpd: worker %d/%d joined cluster", w.self, w.members)
	return w.serve()
}

// dialControl dials the coordinator, retrying while it comes up — the
// three processes of a cluster start in no particular order.
func dialControl(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// serve runs the control loop until the coordinator disconnects (a
// clean exit) or sends shutdown.
func (w *worker) serve() error {
	defer w.mesh.Close()
	for {
		env, err := wire.ReadMsg(w.conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				w.logf("mmlpd: worker %d: coordinator disconnected", w.self)
				return nil
			}
			return err
		}
		w.ops(env.Type).Inc()
		if env.Type == wire.TypeShutdown {
			w.logf("mmlpd: worker %d: shutdown", w.self)
			return nil
		}
		if err := w.dispatch(env); err != nil {
			return err
		}
	}
}

// dispatch handles one control message and writes exactly one reply.
// Handler errors become error replies — the connection stays up; only
// transport failures end the worker.
func (w *worker) dispatch(env *wire.Envelope) error {
	reply, code, err := w.handle(env)
	if err != nil {
		return wire.WriteMsg(w.conn, wire.TypeError, &wire.Error{Code: code, Message: err.Error()})
	}
	if reply == nil {
		return wire.WriteMsg(w.conn, wire.TypeOK, nil)
	}
	return wire.WriteMsg(w.conn, reply.typ, reply.body)
}

type workerReply struct {
	typ  string
	body any
}

func (w *worker) handle(env *wire.Envelope) (*workerReply, string, error) {
	switch env.Type {
	case wire.TypeLoad:
		var msg wire.Load
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		in := new(maxminlp.Instance)
		if err := json.Unmarshal(msg.Instance, in); err != nil {
			return nil, httpapi.CodeInvalidArgument, fmt.Errorf("instance JSON: %w", err)
		}
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{CollaborationOblivious: msg.CollaborationOblivious})
		if msg.Workers > 0 {
			sess.SetWorkers(msg.Workers)
		}
		nw, err := maxminlp.NewSessionNetwork(sess)
		if err != nil {
			return nil, httpapi.CodeInternal, err
		}
		w.mu.Lock()
		w.replicas[msg.ID] = &replica{sess: sess, nw: nw}
		w.mu.Unlock()
		w.logf("mmlpd: worker %d: loaded %s (%d agents)", w.self, msg.ID, in.NumAgents())
		return nil, "", nil

	case wire.TypeUnload:
		var msg wire.Unload
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		w.mu.Lock()
		delete(w.replicas, msg.ID)
		w.mu.Unlock()
		return nil, "", nil

	case wire.TypeWeights:
		var msg wire.Weights
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		deltas := make([]maxminlp.WeightDelta, 0, len(msg.Resources)+len(msg.Parties))
		for _, p := range msg.Resources {
			deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.ResourceWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
		}
		for _, p := range msg.Parties {
			deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.PartyWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
		}
		if err := rep.sess.UpdateWeights(deltas); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		if err := rep.nw.Resync(); err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return nil, "", nil

	case wire.TypeTopology:
		var msg wire.Topology
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		ups := make([]maxminlp.TopoUpdate, len(msg.Ops))
		for i, op := range msg.Ops {
			up, err := topoUpdate(topoOpSpec{Op: op.Op, Kind: op.Kind, Row: op.Row, Agent: op.Agent, Coeff: op.Coeff})
			if err != nil {
				return nil, httpapi.CodeInvalidArgument, fmt.Errorf("op %d: %w", i, err)
			}
			ups[i] = up
		}
		if _, err := rep.sess.UpdateTopology(ups); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		if err := rep.nw.Resync(); err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return nil, "", nil

	case wire.TypeSolve:
		var msg wire.Solve
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		part, err := w.solve(rep, &msg)
		if err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return &workerReply{typ: wire.TypePartial, body: part}, "", nil

	case wire.TypeSnapshot:
		var msg wire.Snapshot
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		in := rep.sess.Instance()
		return &workerReply{typ: wire.TypeState, body: &wire.State{
			ID: msg.ID, Agents: in.NumAgents(),
			Resources: in.NumResources(), Parties: in.NumParties(),
			Digest: instanceDigest(in),
		}}, "", nil

	default:
		return nil, httpapi.CodeInvalidArgument, fmt.Errorf("unexpected control message %q", env.Type)
	}
}

// replica looks up one instance's worker-side state.
func (w *worker) replica(id string) (*replica, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rep, ok := w.replicas[id]
	return rep, ok
}

// solve computes the worker's partition slice of one query. Safe is
// purely local; average joins the cluster-wide partitioned round
// exchange on the data-plane mesh, so it blocks until every worker runs
// the same solve — the coordinator's parallel fan-out guarantees that.
func (w *worker) solve(rep *replica, msg *wire.Solve) (*wire.Partial, error) {
	start := time.Now()
	defer func() { w.solveSec.ObserveDuration(time.Since(start)) }()
	n := rep.sess.Instance().NumAgents()
	pt := dist.Partition{Self: w.self, Members: w.members}
	lo, hi := pt.Bounds(n)
	switch msg.Kind {
	case "safe":
		x, err := rep.sess.SafeRange(lo, hi)
		if err != nil {
			return nil, err
		}
		return &wire.Partial{Lo: lo, Hi: hi, X: x}, nil
	case "average":
		part, err := rep.nw.RunPartitioned(dist.AverageProtocol{Radius: msg.Radius}, pt, w.mesh)
		if err != nil {
			return nil, err
		}
		return &wire.Partial{
			Lo: part.Lo, Hi: part.Hi, X: part.X,
			Rounds: part.Rounds, Messages: part.Messages,
			Payload: part.Payload, MaxNodePayload: part.MaxNodePayload,
		}, nil
	default:
		return nil, fmt.Errorf("unknown solve kind %q", msg.Kind)
	}
}

func (w *worker) numReplicas() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.replicas)
}

// httpHandler serves the worker's own observability endpoints; the
// cluster smoke job scrapes all three processes.
func (w *worker) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, healthResponse{
			Status: "ok", Uptime: time.Since(w.started).Round(time.Millisecond).String(),
			Instances: w.numReplicas(), Role: "worker", Workers: w.members,
		})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		w.reg.Gauge("go_goroutines", "Number of goroutines that currently exist.").
			Set(float64(runtime.NumGoroutine()))
		w.reg.Gauge("mmlpd_uptime_seconds", "Seconds since the daemon started.").
			Set(time.Since(w.started).Seconds())
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := w.reg.WritePrometheus(rw); err != nil {
			w.logf("mmlpd: worker metrics: %v", err)
		}
	})
	return mux
}
