package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"syscall"
	"time"

	"maxminlp"
	"maxminlp/internal/backoff"
	"maxminlp/internal/dist"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/obs"
	"maxminlp/internal/wire"
)

// worker hosts the partition-slice side of a cluster: a full replica
// session per instance (the partitioned round loop reads the replicated
// record ROMs, so only agent-id lists cross the wire), driven entirely
// by the coordinator's control connection. The control loop is strictly
// FIFO — patches and solves apply in exactly the order the coordinator
// linearised them, which is what keeps every replica bit-identical.
//
// The replicas outlive any one control connection: when the connection
// drops (coordinator crashed, network partitioned, RPC deadline fired
// at the other end) a rejoining worker re-Hellos with its replica
// digests and the coordinator replays only the patch-log suffix it
// missed.
type worker struct {
	self    int
	members int
	epoch   uint64
	mesh    *dist.TCPMesh
	ln      net.Listener // data-plane listener; survives rejoins
	conn    net.Conn
	logf    func(format string, args ...any)

	// fatal, when set by a handler, tears the control session down right
	// after its reply is written — the rejoin loop then starts fresh.
	fatal error

	// Duplicate suppression: a retried RPC reuses its sequence number,
	// and a fault-injected wire can deliver a frame twice. Either way
	// the worker must not re-apply — it resends the cached reply.
	lastSeq   uint64
	lastTyp   string
	lastReply any

	// replicas is written only by the FIFO control loop; the mutex exists
	// for the HTTP goroutine's reads.
	mu       sync.Mutex
	replicas map[string]*replica

	reg      *obs.Registry
	ops      func(typ string) *obs.Counter
	started  time.Time
	solveSec *obs.Histogram
	rejoins  *obs.Counter
}

// replica is one instance's worker-side state: the session (for
// SafeRange and patch application) and the session-backed network the
// partitioned runs execute on. The network is resynced after every
// patch — the ROMs bake coefficients in, so weight patches invalidate
// them just as surely as topology does.
type replica struct {
	sess *maxminlp.Solver
	nw   *maxminlp.Network
}

// workerOpts configures runWorkerOpts; zero values pick the defaults.
type workerOpts struct {
	join, data, httpAddr string
	logf                 func(string, ...any)

	// rejoin keeps the worker alive across control-connection failures:
	// it redials the coordinator under jittered exponential backoff,
	// re-Hellos with its replica digests, and catches up. Without it a
	// connection loss ends the worker (the pre-recovery behaviour).
	rejoin bool
	bo     backoff.Policy

	// dialTimeout bounds one connection attempt.
	dialTimeout time.Duration
}

// runWorker joins a cluster and serves it until the coordinator goes
// away. httpAddr serves the worker's own /healthz and /metrics.
func runWorker(joinAddr, dataAddr, httpAddr string, logf func(string, ...any)) error {
	return runWorkerOpts(workerOpts{join: joinAddr, data: dataAddr, httpAddr: httpAddr, logf: logf})
}

func runWorkerOpts(o workerOpts) error {
	if o.logf == nil {
		o.logf = func(string, ...any) {}
	}
	if o.dialTimeout <= 0 {
		o.dialTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", o.data)
	if err != nil {
		return fmt.Errorf("data listener: %w", err)
	}
	defer ln.Close()
	reg := obs.NewRegistry()
	w := &worker{
		ln:       ln,
		replicas: make(map[string]*replica),
		logf:     o.logf,
		reg:      reg,
		started:  time.Now(),
		solveSec: reg.Histogram("mmlpd_worker_solve_seconds",
			"Partition-slice solve latency.", obs.DefLatencyBuckets),
		rejoins: reg.Counter("mmlpd_worker_rejoins_total",
			"Times this worker redialled the coordinator after losing it."),
	}
	w.ops = func(typ string) *obs.Counter {
		return reg.Counter("mmlpd_worker_control_ops_total",
			"Control-plane operations served, by type.", obs.L("type", typ))
	}
	if o.httpAddr != "" {
		hln, err := net.Listen("tcp", o.httpAddr)
		if err != nil {
			return fmt.Errorf("http listener: %w", err)
		}
		o.logf("mmlpd: worker serving http on %s", hln.Addr())
		go func() {
			if err := http.Serve(hln, w.httpHandler()); err != nil {
				o.logf("mmlpd: worker http: %v", err)
			}
		}()
	}
	bo := backoff.New(o.bo, time.Now().UnixNano())
	for {
		err := w.session(o.join, o.dialTimeout)
		if err == nil {
			return nil // clean shutdown from the coordinator
		}
		if !o.rejoin {
			if isDisconnect(err) {
				w.logf("mmlpd: worker: coordinator disconnected")
				return nil
			}
			return err
		}
		w.rejoins.Inc()
		w.logf("mmlpd: worker: lost coordinator (%v) — rejoining with %d replicas", err, w.numReplicas())
		bo.Next()
	}
}

// isDisconnect reports a control-connection teardown as seen from the
// worker: EOF on an orderly close, or the reset an abrupt coordinator
// close sends when replies were still in flight.
func isDisconnect(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, net.ErrClosed)
}

// session runs one connected stint: dial, Hello with the surviving
// replica digests, then serve the control loop until shutdown (nil) or
// a failure (the rejoin loop's cue).
func (w *worker) session(join string, dialTimeout time.Duration) error {
	conn, err := dialControl(join, dialTimeout)
	if err != nil {
		return fmt.Errorf("joining %s: %w", join, err)
	}
	w.conn = conn
	w.lastSeq, w.lastTyp, w.lastReply = 0, "", nil
	defer conn.Close()
	defer func() {
		if w.mesh != nil {
			w.mesh.Close()
			w.mesh = nil
		}
	}()
	hello := &wire.Hello{DataAddr: w.ln.Addr().String(), Digests: w.digests()}
	if err := wire.WriteMsg(conn, wire.TypeHello, hello); err != nil {
		return err
	}
	return w.serve()
}

// dialControl dials the coordinator, retrying while it comes up — the
// three processes of a cluster start in no particular order.
func dialControl(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// serve runs the control loop until the coordinator sends shutdown
// (nil) or the transport fails (error; the rejoin loop redials).
func (w *worker) serve() error {
	for {
		env, err := wire.ReadMsg(w.conn)
		if err != nil {
			return err
		}
		w.ops(env.Type).Inc()
		if env.Type == wire.TypeShutdown {
			w.logf("mmlpd: worker %d: shutdown", w.self)
			return nil
		}
		if env.Seq != 0 && env.Seq == w.lastSeq {
			// Duplicate delivery attempt — an RPC retry or a wire-level
			// dup. Resend the cached reply; never re-apply.
			if err := wire.WriteMsgSeq(w.conn, w.lastTyp, env.Seq, w.lastReply); err != nil {
				return err
			}
			continue
		}
		if err := w.dispatch(env); err != nil {
			return err
		}
	}
}

// dispatch handles one control message and writes exactly one reply,
// echoing the request's sequence number. Handler errors become error
// replies — the connection stays up; only transport failures (and a
// handler-flagged fatal, like a failed mesh build) end the session.
func (w *worker) dispatch(env *wire.Envelope) error {
	reply, code, err := w.handle(env)
	var typ string
	var body any
	switch {
	case err != nil:
		typ, body = wire.TypeError, &wire.Error{Code: code, Message: err.Error()}
	case reply == nil:
		typ, body = wire.TypeOK, nil
	default:
		typ, body = reply.typ, reply.body
	}
	if env.Seq != 0 {
		w.lastSeq, w.lastTyp, w.lastReply = env.Seq, typ, body
	}
	if werr := wire.WriteMsgSeq(w.conn, typ, env.Seq, body); werr != nil {
		return werr
	}
	if w.fatal != nil {
		f := w.fatal
		w.fatal = nil
		return f
	}
	return nil
}

type workerReply struct {
	typ  string
	body any
}

func (w *worker) handle(env *wire.Envelope) (*workerReply, string, error) {
	switch env.Type {
	case wire.TypeAssign:
		var asg wire.Assign
		if err := env.Decode(&asg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		if w.mesh != nil {
			w.mesh.Close()
			w.mesh = nil
		}
		mesh, err := dist.NewTCPMesh(asg.Self, asg.Peers, w.ln)
		if err != nil {
			// The reply tells the coordinator to drop us; the fatal tears
			// this session down so the rejoin loop starts clean.
			w.fatal = fmt.Errorf("building mesh as member %d (epoch %d): %w", asg.Self, asg.Epoch, err)
			return nil, httpapi.CodeCluster, w.fatal
		}
		w.mu.Lock() // members is read by the HTTP goroutine's healthz
		w.self, w.members, w.epoch, w.mesh = asg.Self, len(asg.Peers), asg.Epoch, mesh
		w.mu.Unlock()
		w.logf("mmlpd: worker %d/%d meshed (epoch %d)", w.self, w.members, w.epoch)
		return nil, "", nil

	case wire.TypePing:
		return &workerReply{typ: wire.TypePong}, "", nil

	case wire.TypeLoad:
		var msg wire.Load
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		in := new(maxminlp.Instance)
		if err := json.Unmarshal(msg.Instance, in); err != nil {
			return nil, httpapi.CodeInvalidArgument, fmt.Errorf("instance JSON: %w", err)
		}
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{CollaborationOblivious: msg.CollaborationOblivious})
		if msg.Workers > 0 {
			sess.SetWorkers(msg.Workers)
		}
		nw, err := maxminlp.NewSessionNetwork(sess)
		if err != nil {
			return nil, httpapi.CodeInternal, err
		}
		w.mu.Lock()
		w.replicas[msg.ID] = &replica{sess: sess, nw: nw}
		w.mu.Unlock()
		w.logf("mmlpd: worker %d: loaded %s (%d agents)", w.self, msg.ID, in.NumAgents())
		return nil, "", nil

	case wire.TypeUnload:
		var msg wire.Unload
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		w.mu.Lock()
		delete(w.replicas, msg.ID)
		w.mu.Unlock()
		return nil, "", nil

	case wire.TypeWeights:
		var msg wire.Weights
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		deltas := make([]maxminlp.WeightDelta, 0, len(msg.Resources)+len(msg.Parties))
		for _, p := range msg.Resources {
			deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.ResourceWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
		}
		for _, p := range msg.Parties {
			deltas = append(deltas, maxminlp.WeightDelta{Kind: maxminlp.PartyWeight, Row: p.Row, Agent: p.Agent, Coeff: p.Coeff})
		}
		if err := rep.sess.UpdateWeights(deltas); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		if err := rep.nw.Resync(); err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return nil, "", nil

	case wire.TypeTopology:
		var msg wire.Topology
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		ups := make([]maxminlp.TopoUpdate, len(msg.Ops))
		for i, op := range msg.Ops {
			up, err := topoUpdate(topoOpSpec{Op: op.Op, Kind: op.Kind, Row: op.Row, Agent: op.Agent, Coeff: op.Coeff})
			if err != nil {
				return nil, httpapi.CodeInvalidArgument, fmt.Errorf("op %d: %w", i, err)
			}
			ups[i] = up
		}
		if _, err := rep.sess.UpdateTopology(ups); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		if err := rep.nw.Resync(); err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return nil, "", nil

	case wire.TypeSolve:
		var msg wire.Solve
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		part, err := w.solve(rep, &msg)
		if err != nil {
			return nil, httpapi.CodeInternal, err
		}
		return &workerReply{typ: wire.TypePartial, body: part}, "", nil

	case wire.TypeResync:
		// Post-catch-up self-check: rebuild the network's derived state
		// from the session, run the self-stabilising protocol fault-free
		// for one horizon, and require bit-identity with its own
		// reference engine. A replica that diverged in any way the
		// digests could miss fails here and is replayed from scratch.
		var msg wire.Resync
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		if err := rep.nw.Resync(); err != nil {
			return nil, httpapi.CodeInternal, err
		}
		r := msg.Radius
		if r < 1 {
			r = 1
		}
		p := dist.StabilizingAverage{Radius: r}
		run, err := rep.nw.RunStabilizing(p, p.Horizon()+1, -1, nil)
		if err != nil {
			return nil, httpapi.CodeInternal, err
		}
		last := run.Outputs[len(run.Outputs)-1]
		for v := range last {
			if last[v] != run.Reference[v] {
				return nil, httpapi.CodeInternal,
					fmt.Errorf("stabilising self-check of %s diverged at agent %d", msg.ID, v)
			}
		}
		in := rep.sess.Instance()
		return &workerReply{typ: wire.TypeState, body: &wire.State{
			ID: msg.ID, Agents: in.NumAgents(),
			Resources: in.NumResources(), Parties: in.NumParties(),
			Digest: instanceDigest(in),
		}}, "", nil

	case wire.TypeSnapshot:
		var msg wire.Snapshot
		if err := env.Decode(&msg); err != nil {
			return nil, httpapi.CodeInvalidArgument, err
		}
		rep, ok := w.replica(msg.ID)
		if !ok {
			return nil, httpapi.CodeNotFound, fmt.Errorf("no replica of %s", msg.ID)
		}
		in := rep.sess.Instance()
		return &workerReply{typ: wire.TypeState, body: &wire.State{
			ID: msg.ID, Agents: in.NumAgents(),
			Resources: in.NumResources(), Parties: in.NumParties(),
			Digest: instanceDigest(in),
		}}, "", nil

	default:
		return nil, httpapi.CodeInvalidArgument, fmt.Errorf("unexpected control message %q", env.Type)
	}
}

// replica looks up one instance's worker-side state.
func (w *worker) replica(id string) (*replica, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rep, ok := w.replicas[id]
	return rep, ok
}

// digests reports every surviving replica's digest, the rejoin Hello's
// catch-up anchor.
func (w *worker) digests() map[string]string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.replicas) == 0 {
		return nil
	}
	out := make(map[string]string, len(w.replicas))
	for id, rep := range w.replicas {
		out[id] = instanceDigest(rep.sess.Instance())
	}
	return out
}

// solve computes the worker's partition slice of one query. Safe is
// purely local; average joins the cluster-wide partitioned round
// exchange on the data-plane mesh, so it blocks until every worker runs
// the same solve — the coordinator's parallel fan-out guarantees that.
func (w *worker) solve(rep *replica, msg *wire.Solve) (*wire.Partial, error) {
	start := time.Now()
	defer func() { w.solveSec.ObserveDuration(time.Since(start)) }()
	if w.mesh == nil {
		return nil, fmt.Errorf("worker has no mesh assignment yet")
	}
	n := rep.sess.Instance().NumAgents()
	pt := dist.Partition{Self: w.self, Members: w.members}
	lo, hi := pt.Bounds(n)
	switch msg.Kind {
	case "safe":
		x, err := rep.sess.SafeRange(lo, hi)
		if err != nil {
			return nil, err
		}
		return &wire.Partial{Lo: lo, Hi: hi, X: x}, nil
	case "average":
		part, err := rep.nw.RunPartitioned(dist.AverageProtocol{Radius: msg.Radius}, pt, w.mesh)
		if err != nil {
			return nil, err
		}
		return &wire.Partial{
			Lo: part.Lo, Hi: part.Hi, X: part.X,
			Rounds: part.Rounds, Messages: part.Messages,
			Payload: part.Payload, MaxNodePayload: part.MaxNodePayload,
		}, nil
	default:
		return nil, fmt.Errorf("unknown solve kind %q", msg.Kind)
	}
}

func (w *worker) numReplicas() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.replicas)
}

// httpHandler serves the worker's own observability endpoints; the
// cluster smoke job scrapes all three processes.
func (w *worker) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		w.mu.Lock()
		replicas, members := len(w.replicas), w.members
		w.mu.Unlock()
		writeJSON(rw, http.StatusOK, healthResponse{
			Status: "ok", Uptime: time.Since(w.started).Round(time.Millisecond).String(),
			Instances: replicas, Role: "worker", Workers: members,
		})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		w.reg.Gauge("go_goroutines", "Number of goroutines that currently exist.").
			Set(float64(runtime.NumGoroutine()))
		w.reg.Gauge("mmlpd_uptime_seconds", "Seconds since the daemon started.").
			Set(time.Since(w.started).Seconds())
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := w.reg.WritePrometheus(rw); err != nil {
			w.logf("mmlpd: worker metrics: %v", err)
		}
	})
	return mux
}
