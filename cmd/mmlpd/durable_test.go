package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"maxminlp"
	"maxminlp/internal/gen"
	"maxminlp/internal/httpapi"
	"maxminlp/internal/mmlpclient"
	"maxminlp/internal/wal"
)

// newDurableServer boots a daemon backed by the WAL in dir, replaying
// whatever a previous incarnation left behind. snapshotEvery is kept
// tiny so the tests exercise snapshot + trailing-records recovery, not
// just pure replay.
func newDurableServer(t *testing.T, dir string, snapshotEvery int) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(nil)
	if err := srv.openWAL(dir, wal.SyncAlways, snapshotEvery); err != nil {
		t.Fatal(err)
	}
	if err := srv.replayWAL(); err != nil {
		t.Fatal(err)
	}
	srv.recovering.Store(false)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// goldenX reads the churned output vector (exact hex float64 bits) of
// one PR 5 golden trace file — the corpus the whole distributed tier is
// pinned to.
func goldenX(t *testing.T, family string, radius int) []string {
	t.Helper()
	path := filepath.Join("..", "..", "internal", "dist", "testdata",
		"trace_"+family+"_R"+strconv.Itoa(radius)+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var gf struct {
		Churned struct {
			X []string `json:"x"`
		} `json:"churned"`
	}
	if err := json.Unmarshal(blob, &gf); err != nil {
		t.Fatal(err)
	}
	return gf.Churned.X
}

func hexBits(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.FormatFloat(x, 'x', -1, 64)
	}
	return out
}

func sameHex(t *testing.T, label string, got []float64, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i, h := range hexBits(got) {
		if h != want[i] {
			t.Fatalf("%s: X[%d] = %s, want %s", label, i, h, want[i])
		}
	}
}

// goldenFamilies rebuilds the exact instances behind the golden-trace
// corpus (the shared rng makes the draw order significant — same as
// internal/dist/golden_test.go).
func goldenFamilies() []struct {
	name string
	in   *maxminlp.Instance
} {
	rngW := rand.New(rand.NewSource(33))
	torus, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	grid, _ := gen.Grid([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	geo, _ := gen.UnitDisk(gen.UnitDiskOptions{
		Nodes: 30, Radius: 0.28, MaxNeighbors: 4, RandomWeights: true,
	}, rand.New(rand.NewSource(35)))
	return []struct {
		name string
		in   *maxminlp.Instance
	}{
		{"torus6x6", torus},
		{"grid5x5", grid},
		{"geometric30", geo},
	}
}

// goldenChurnOps is the corpus's fixed structural batch as HTTP patch
// ops: a node joins resource 0 and party 0, node 1 leaves.
func goldenChurnOps(in *maxminlp.Instance) []httpapi.TopoOp {
	n := in.NumAgents()
	return []httpapi.TopoOp{
		{Op: "addAgent"},
		{Op: "addEdge", Row: 0, Agent: n, Coeff: 1.25},
		{Op: "addEdge", Kind: "party", Row: 0, Agent: n, Coeff: 0.75},
		{Op: "removeAgent", Agent: 1},
	}
}

// TestDurableRestartBitIdentity is the tentpole acceptance test: load
// the golden corpus through a WAL-backed daemon, churn it with the
// corpus's structural batch plus weight patches, then abandon the
// process state (no clean close — a crash) and restart from the data
// directory alone. The reborn daemon must serve every golden family
// bit-identically to the committed PR 5 traces, its instance digests
// must equal the pre-crash ones, and its ID sequence must not collide.
func TestDurableRestartBitIdentity(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newDurableServer(t, dir, 3) // tiny: forces mid-history snapshots
	cl := mmlpclient.New(ts1.URL, nil)

	fams := goldenFamilies()
	ids := make(map[string]string, len(fams))
	for _, fam := range fams {
		raw, err := json.Marshal(fam.in)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cl.Load(&httpapi.LoadRequest{Name: fam.name, Instance: raw})
		if err != nil {
			t.Fatal(err)
		}
		ids[fam.name] = info.ID
		if _, err := cl.PatchTopology(info.ID, &httpapi.TopologyRequest{
			Ops: goldenChurnOps(fam.in),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A fourth instance takes weight churn (the record type the corpus
	// does not cover) and a fifth is loaded then deleted, so recovery
	// also replays an unload.
	wInfo, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PatchWeights(wInfo.ID, &httpapi.WeightsRequest{
		Resources: []httpapi.CoeffPatch{{Row: 0, Agent: 0, Coeff: 2.25}},
		Parties:   []httpapi.CoeffPatch{{Row: 0, Agent: 0, Coeff: 0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	gone, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{3, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(gone.ID); err != nil {
		t.Fatal(err)
	}

	solveBoth := func(cl *mmlpclient.Client, id string) ([]float64, []float64) {
		res, err := cl.Solve(id, &httpapi.SolveRequest{
			IncludeX: true,
			Queries: []httpapi.SolveQuery{
				{Kind: "average", Radius: 1}, {Kind: "average", Radius: 2},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].X, res[1].X
	}

	// Pre-crash: the live daemon already matches the golden corpus.
	for _, fam := range fams {
		x1, x2 := solveBoth(cl, ids[fam.name])
		sameHex(t, "pre-crash "+fam.name+"/R1", x1, goldenX(t, fam.name, 1))
		sameHex(t, "pre-crash "+fam.name+"/R2", x2, goldenX(t, fam.name, 2))
	}
	wPre, _ := solveBoth(cl, wInfo.ID)

	digests := make(map[string]string)
	srv1.mu.Lock()
	for id, m := range srv1.instances {
		digests[id] = instanceDigest(m.sess.Instance())
	}
	srv1.mu.Unlock()

	// Crash: the HTTP listener dies and the WAL is never closed — the
	// restart sees exactly what fsync left on disk.
	ts1.Close()

	srv2, ts2 := newDurableServer(t, dir, 3)
	cl2 := mmlpclient.New(ts2.URL, nil)

	// Replica digests first: the recovered state is bit-identical
	// before any query warms it.
	srv2.mu.Lock()
	for id, m := range srv2.instances {
		if got := instanceDigest(m.sess.Instance()); got != digests[id] {
			srv2.mu.Unlock()
			t.Fatalf("recovered digest for %s = %s, want %s", id, got, digests[id])
		}
		delete(digests, id)
	}
	srv2.mu.Unlock()
	if len(digests) != 0 {
		t.Fatalf("instances lost in recovery: %v", digests)
	}

	// The deleted instance stayed deleted.
	if _, err := cl2.Get(gone.ID); err == nil {
		t.Fatalf("deleted instance %s resurrected by replay", gone.ID)
	}

	// And the recovered sessions still solve the golden corpus exactly.
	for _, fam := range fams {
		x1, x2 := solveBoth(cl2, ids[fam.name])
		sameHex(t, "post-crash "+fam.name+"/R1", x1, goldenX(t, fam.name, 1))
		sameHex(t, "post-crash "+fam.name+"/R2", x2, goldenX(t, fam.name, 2))
	}
	wPost, _ := solveBoth(cl2, wInfo.ID)
	sameHex(t, "post-crash weights", wPost, hexBits(wPre))

	// The ID sequence continues instead of colliding with replayed IDs.
	next, err := cl2.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{3, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := ids[next.Name]; taken || next.ID == wInfo.ID || next.ID == gone.ID {
		t.Fatalf("post-recovery load reused ID %s", next.ID)
	}
	for _, id := range ids {
		if next.ID == id {
			t.Fatalf("post-recovery load reused ID %s", next.ID)
		}
	}
}

// TestDurableSecondRestart chains a second crash/restart on the same
// directory — recovery from a snapshot produced by a recovered daemon —
// and checks the WAL digest is stable across generations.
func TestDurableSecondRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newDurableServer(t, dir, 2)
	cl := mmlpclient.New(ts1.URL, nil)
	info, err := cl.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.PatchWeights(info.ID, &httpapi.WeightsRequest{
			Resources: []httpapi.CoeffPatch{{Row: 0, Agent: 0, Coeff: 1 + float64(i)/4}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
		IncludeX: true, Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := hexBits(res[0].X)
	ts1.Close()

	for gen := 0; gen < 2; gen++ {
		_, ts := newDurableServer(t, dir, 2)
		cl := mmlpclient.New(ts.URL, nil)
		res, err := cl.Solve(info.ID, &httpapi.SolveRequest{
			IncludeX: true, Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 1}},
		})
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		sameHex(t, "generation "+strconv.Itoa(gen), res[0].X, want)
		ts.Close()
	}
}
