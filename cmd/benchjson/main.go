// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON map, so the repo's perf trajectory can be
// tracked file-to-file across PRs instead of by eyeballing logs. The
// bench-smoke CI job runs every benchmark once and publishes the result
// as BENCH_PR3.json at the repository root:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | tee bench.txt
//	go run ./cmd/benchjson -o BENCH_PR3.json bench.txt
//
// Each benchmark maps to its parsed metrics: ns/op always, plus B/op,
// allocs/op and any custom b.ReportMetric series present (the dedup
// benchmarks report solves/op and avoided/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseBench extracts metric maps from `go test -bench` output lines of
// the form:
//
//	BenchmarkName-8   10   123456 ns/op   789 B/op   12 allocs/op
//
// The GOMAXPROCS suffix is stripped so keys stay stable across hosts.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		// fields[1] is the iteration count; the rest come in value/unit
		// pairs.
		if iters, err := strconv.ParseFloat(fields[1], 64); err == nil {
			metrics["iterations"] = iters
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 1 {
			out[name] = metrics
		}
	}
	return out, sc.Err()
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	parsed, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found")
	}
	// Deterministic output: sorted keys via an ordered re-marshal.
	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		enc, err := json.Marshal(parsed[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	if *outPath != "" {
		return os.WriteFile(*outPath, []byte(b.String()), 0o644)
	}
	_, err = io.WriteString(stdout, b.String())
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
