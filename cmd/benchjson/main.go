// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON map, so the repo's perf trajectory can be
// tracked file-to-file across PRs instead of by eyeballing logs. The
// bench-smoke CI job runs every benchmark once and publishes the result
// as BENCH_PR3.json at the repository root:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | tee bench.txt
//	go run ./cmd/benchjson -o BENCH_PR3.json bench.txt
//
// Each benchmark maps to its parsed metrics: ns/op always, plus B/op,
// allocs/op and any custom b.ReportMetric series present (the dedup
// benchmarks report solves/op and avoided/op). When the same benchmark
// appears more than once (a `-count N` run), metrics are aggregated
// elementwise by minimum — the standard noise filter for throughput
// numbers, since scheduling jitter only ever inflates them.
//
// Relative perf assertions gate CI without golden absolute numbers:
//
//	go run ./cmd/benchjson \
//	  -assert 'BenchmarkSessionObs/cold:ns/op<=1.02*BenchmarkSession/cold:ns/op' \
//	  bench.txt
//
// exits non-zero when the left side exceeds factor×right side, so the
// instrumented session pays its <2% overhead budget on every push.
//
// The emitted JSON carries one extra top-level "_meta" key recording the
// host the numbers came from — GOMAXPROCS, NumCPU, GOOS/GOARCH, the Go
// version and a hashed hostname fingerprint — so scaling numbers in
// committed BENCH_* files are interpretable across machines (a flat
// P=1..8 matrix means nothing without knowing the host had one core).
// Benchmark keys themselves are unchanged and stay stable across hosts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// parseBench extracts metric maps from `go test -bench` output lines of
// the form:
//
//	BenchmarkName-8   10   123456 ns/op   789 B/op   12 allocs/op
//
// The GOMAXPROCS suffix is stripped so keys stay stable across hosts.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		// fields[1] is the iteration count; the rest come in value/unit
		// pairs.
		if iters, err := strconv.ParseFloat(fields[1], 64); err == nil {
			metrics["iterations"] = iters
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 1 {
			if prev, ok := out[name]; ok {
				mergeMin(prev, metrics)
			} else {
				out[name] = metrics
			}
		}
	}
	return out, sc.Err()
}

// mergeMin folds a repeated run of the same benchmark into the
// accumulated metrics, keeping the elementwise minimum. Metrics only
// one run reports are kept as-is.
func mergeMin(acc, next map[string]float64) {
	for k, v := range next {
		if old, ok := acc[k]; !ok || v < old {
			acc[k] = v
		}
	}
}

// assertion is one parsed `-assert` constraint:
// left <= factor * right, where each side is a <bench>:<metric> pair
// (colon-separated, since benchmark names themselves contain slashes).
type assertion struct {
	leftBench, leftMetric   string
	factor                  float64
	rightBench, rightMetric string
}

func parseAssertion(s string) (assertion, error) {
	var a assertion
	lhs, rhs, ok := strings.Cut(s, "<=")
	if !ok {
		return a, fmt.Errorf("assertion %q: missing \"<=\"", s)
	}
	factorStr, ref, ok := strings.Cut(rhs, "*")
	if !ok {
		return a, fmt.Errorf("assertion %q: right side must be <factor>*<bench>:<metric>", s)
	}
	factor, err := strconv.ParseFloat(strings.TrimSpace(factorStr), 64)
	if err != nil {
		return a, fmt.Errorf("assertion %q: bad factor: %v", s, err)
	}
	cut := func(side string) (string, string, error) {
		b, m, ok := strings.Cut(strings.TrimSpace(side), ":")
		if !ok || b == "" || m == "" {
			return "", "", fmt.Errorf("assertion %q: %q is not <bench>:<metric>", s, side)
		}
		return b, m, nil
	}
	if a.leftBench, a.leftMetric, err = cut(lhs); err != nil {
		return a, err
	}
	if a.rightBench, a.rightMetric, err = cut(ref); err != nil {
		return a, err
	}
	a.factor = factor
	return a, nil
}

// check evaluates the assertion against parsed results; a missing
// benchmark or metric is itself a failure so a renamed benchmark can't
// silently disarm the gate.
func (a assertion) check(parsed map[string]map[string]float64) error {
	lookup := func(bench, metric string) (float64, error) {
		m, ok := parsed[bench]
		if !ok {
			return 0, fmt.Errorf("benchmark %q not in input", bench)
		}
		v, ok := m[metric]
		if !ok {
			return 0, fmt.Errorf("benchmark %q has no metric %q", bench, metric)
		}
		return v, nil
	}
	left, err := lookup(a.leftBench, a.leftMetric)
	if err != nil {
		return err
	}
	right, err := lookup(a.rightBench, a.rightMetric)
	if err != nil {
		return err
	}
	// `left > limit` is false for NaN, so a poisoned metric (0/0 in a
	// ReportMetric, a corrupted line) would sail through the gate; an
	// infinite limit likewise compares as "within budget". Any
	// non-finite operand fails the assertion outright.
	if limit := a.factor * right; math.IsNaN(left) || math.IsInf(left, 0) ||
		math.IsNaN(limit) || math.IsInf(limit, 0) {
		return fmt.Errorf("%s:%s = %g vs limit %g*%s:%s = %g: non-finite values cannot satisfy an assertion",
			a.leftBench, a.leftMetric, left, a.factor, a.rightBench, a.rightMetric, limit)
	} else if left > limit {
		return fmt.Errorf("%s:%s = %g exceeds %g*%s:%s = %g (ratio %.4f)",
			a.leftBench, a.leftMetric, left, a.factor, a.rightBench, a.rightMetric,
			limit, left/right)
	}
	return nil
}

// repeatFlag collects every occurrence of a repeatable string flag.
type repeatFlag []string

func (r *repeatFlag) String() string { return strings.Join(*r, ",") }

func (r *repeatFlag) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	var asserts repeatFlag
	fs.Var(&asserts, "assert", "perf constraint <bench>:<metric><=<factor>*<bench>:<metric> (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	checks := make([]assertion, len(asserts))
	for i, s := range asserts {
		a, err := parseAssertion(s)
		if err != nil {
			return err
		}
		checks[i] = a
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	parsed, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found")
	}
	for _, a := range checks {
		if err := a.check(parsed); err != nil {
			return fmt.Errorf("benchjson: assertion failed: %v", err)
		}
	}
	// Deterministic output: _meta first, then sorted benchmark keys via
	// an ordered re-marshal.
	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	meta, err := json.Marshal(hostMeta())
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "  %q: %s,\n", "_meta", meta)
	for i, name := range names {
		enc, err := json.Marshal(parsed[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	if *outPath != "" {
		return os.WriteFile(*outPath, []byte(b.String()), 0o644)
	}
	_, err = io.WriteString(stdout, b.String())
	return err
}

// hostMeta describes the machine the benchmarks ran on. The hostname is
// hashed: enough to tell two hosts' numbers apart in committed files
// without leaking machine names.
func hostMeta() map[string]any {
	h := fnv.New64a()
	if name, err := os.Hostname(); err == nil {
		h.Write([]byte(name))
	}
	return map[string]any{
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"numcpu":     runtime.NumCPU(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"goversion":  runtime.Version(),
		"host":       fmt.Sprintf("%016x", h.Sum64()),
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
