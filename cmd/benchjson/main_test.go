package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: maxminlp
BenchmarkE5LocalAverage-8   	       3	  39183086 ns/op	 2990658 B/op	    6277 allocs/op
BenchmarkLocalAverageRadius/R=2-8      	       3	   7948295 ns/op	  572008 B/op	     285 allocs/op
BenchmarkLocalAverageDedup/dedup-8     	       5	   5000000 ns/op	  121 solves/op	 135 avoided/op	 500 B/op	 10 allocs/op
PASS
ok  	maxminlp	0.496s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e5 := got["BenchmarkE5LocalAverage"]
	if e5 == nil || e5["ns/op"] != 39183086 || e5["allocs/op"] != 6277 {
		t.Fatalf("E5 metrics wrong: %v", e5)
	}
	radius := got["BenchmarkLocalAverageRadius/R=2"]
	if radius == nil || radius["ns/op"] != 7948295 {
		t.Fatalf("sub-benchmark name or metrics wrong: %v", got)
	}
	dedup := got["BenchmarkLocalAverageDedup/dedup"]
	if dedup == nil || dedup["solves/op"] != 121 || dedup["avoided/op"] != 135 {
		t.Fatalf("custom metrics not parsed: %v", dedup)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	var e5 map[string]float64
	if err := json.Unmarshal(decoded["BenchmarkE5LocalAverage"], &e5); err != nil || e5["ns/op"] != 39183086 {
		t.Fatalf("round-trip lost data: %v %v", e5, err)
	}
	// Deterministic key order for diff-friendly files.
	first := strings.Index(out.String(), "BenchmarkE5LocalAverage")
	second := strings.Index(out.String(), "BenchmarkLocalAverageDedup/dedup")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("keys not sorted:\n%s", out.String())
	}
}

// TestRunEmitsHostMeta: the _meta field describes the bench host in a
// separate top-level key, leaving the benchmark keys untouched.
func TestRunEmitsHostMeta(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Meta struct {
			GOMAXPROCS int    `json:"gomaxprocs"`
			NumCPU     int    `json:"numcpu"`
			GOOS       string `json:"goos"`
			GoVersion  string `json:"goversion"`
			Host       string `json:"host"`
		} `json:"_meta"`
	}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	m := decoded.Meta
	if m.GOMAXPROCS < 1 || m.NumCPU < 1 || m.GOOS == "" || m.GoVersion == "" {
		t.Fatalf("_meta incomplete: %+v", m)
	}
	if len(m.Host) != 16 {
		t.Fatalf("host fingerprint %q is not a 64-bit hex digest", m.Host)
	}
	// _meta must never collide with or alter benchmark keys.
	if strings.Count(out.String(), "\"_meta\"") != 1 || !strings.Contains(out.String(), "\"BenchmarkE5LocalAverage\"") {
		t.Fatalf("unexpected key layout:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}

const repeated = `BenchmarkSession/cold-8     	      20	  16000000 ns/op	 2500000 B/op	    1268 allocs/op
BenchmarkSession/cold-8     	      20	  15500000 ns/op	 2600000 B/op	    1268 allocs/op
BenchmarkSessionObs/cold-8  	      20	  15700000 ns/op	 2510000 B/op	    1270 allocs/op
BenchmarkSessionObs/cold-8  	      20	  16400000 ns/op	 2505000 B/op	    1270 allocs/op	 17500000 lp-solve-p50-ns
`

func TestParseBenchMinAggregation(t *testing.T) {
	got, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	cold := got["BenchmarkSession/cold"]
	if cold["ns/op"] != 15500000 || cold["B/op"] != 2500000 {
		t.Fatalf("elementwise min not applied: %v", cold)
	}
	obs := got["BenchmarkSessionObs/cold"]
	if obs["lp-solve-p50-ns"] != 17500000 {
		t.Fatalf("metric present in only one run lost: %v", obs)
	}
}

func TestAssertions(t *testing.T) {
	pass := []string{"-assert", "BenchmarkSessionObs/cold:ns/op<=1.02*BenchmarkSession/cold:ns/op"}
	var out strings.Builder
	if err := run(pass, strings.NewReader(repeated), &out); err != nil {
		t.Fatalf("passing assertion failed: %v", err)
	}
	// 15.7e6 > 1.0 * 15.5e6: tighten the factor until it trips.
	fail := []string{"-assert", "BenchmarkSessionObs/cold:ns/op<=1.0*BenchmarkSession/cold:ns/op"}
	err := run(fail, strings.NewReader(repeated), &out)
	if err == nil || !strings.Contains(err.Error(), "assertion failed") {
		t.Fatalf("violated assertion not reported: %v", err)
	}
	// A typo'd benchmark name must fail, not silently pass.
	missing := []string{"-assert", "BenchmarkNope:ns/op<=1.0*BenchmarkSession/cold:ns/op"}
	if err := run(missing, strings.NewReader(repeated), &out); err == nil {
		t.Fatal("assertion on missing benchmark passed")
	}
}

func TestParseAssertionErrors(t *testing.T) {
	for _, bad := range []string{
		"no-comparator",
		"a:b<=c:d",      // missing factor
		"a<=1.0*b:c",    // left side not bench:metric
		"a:b<=oops*c:d", // unparseable factor
	} {
		if _, err := parseAssertion(bad); err == nil {
			t.Errorf("parseAssertion(%q) accepted", bad)
		}
	}
	a, err := parseAssertion("BenchmarkA/x:ns/op<=1.02*BenchmarkB/y:ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if a.leftBench != "BenchmarkA/x" || a.leftMetric != "ns/op" || a.factor != 1.02 ||
		a.rightBench != "BenchmarkB/y" || a.rightMetric != "ns/op" {
		t.Fatalf("parsed wrong: %+v", a)
	}
}

// TestAssertionMissingMetric: the bench exists but the referenced
// metric does not — the gate must trip, not silently disarm.
func TestAssertionMissingMetric(t *testing.T) {
	var out strings.Builder
	args := []string{"-assert", "BenchmarkSessionObs/cold:widgets/op<=1.0*BenchmarkSession/cold:ns/op"}
	err := run(args, strings.NewReader(repeated), &out)
	if err == nil || !strings.Contains(err.Error(), "no metric") {
		t.Fatalf("missing metric not reported: %v", err)
	}
	args = []string{"-assert", "BenchmarkSessionObs/cold:ns/op<=1.0*BenchmarkSession/cold:widgets/op"}
	if err := run(args, strings.NewReader(repeated), &out); err == nil {
		t.Fatal("missing right-side metric passed")
	}
}

// TestAssertionNonFinite: NaN compares false with > so a poisoned
// metric used to slip through `left > limit`; both NaN operands and
// infinite limits must fail the assertion.
func TestAssertionNonFinite(t *testing.T) {
	input := "BenchmarkA-8 10 NaN ns/op\nBenchmarkB-8 10 100 ns/op\n"
	var out strings.Builder
	nanLeft := []string{"-assert", "BenchmarkA:ns/op<=1.0*BenchmarkB:ns/op"}
	err := run(nanLeft, strings.NewReader(input), &out)
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN left operand passed the gate: %v", err)
	}
	nanRight := []string{"-assert", "BenchmarkB:ns/op<=1.0*BenchmarkA:ns/op"}
	if err := run(nanRight, strings.NewReader(input), &out); err == nil {
		t.Fatal("NaN limit passed the gate")
	}
	infInput := "BenchmarkA-8 10 +Inf ns/op\nBenchmarkB-8 10 100 ns/op\n"
	infRight := []string{"-assert", "BenchmarkB:ns/op<=1.0*BenchmarkA:ns/op"}
	if err := run(infRight, strings.NewReader(infInput), &out); err == nil {
		t.Fatal("infinite limit passed the gate")
	}
}
