package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: maxminlp
BenchmarkE5LocalAverage-8   	       3	  39183086 ns/op	 2990658 B/op	    6277 allocs/op
BenchmarkLocalAverageRadius/R=2-8      	       3	   7948295 ns/op	  572008 B/op	     285 allocs/op
BenchmarkLocalAverageDedup/dedup-8     	       5	   5000000 ns/op	  121 solves/op	 135 avoided/op	 500 B/op	 10 allocs/op
PASS
ok  	maxminlp	0.496s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e5 := got["BenchmarkE5LocalAverage"]
	if e5 == nil || e5["ns/op"] != 39183086 || e5["allocs/op"] != 6277 {
		t.Fatalf("E5 metrics wrong: %v", e5)
	}
	radius := got["BenchmarkLocalAverageRadius/R=2"]
	if radius == nil || radius["ns/op"] != 7948295 {
		t.Fatalf("sub-benchmark name or metrics wrong: %v", got)
	}
	dedup := got["BenchmarkLocalAverageDedup/dedup"]
	if dedup == nil || dedup["solves/op"] != 121 || dedup["avoided/op"] != 135 {
		t.Fatalf("custom metrics not parsed: %v", dedup)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]float64
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if decoded["BenchmarkE5LocalAverage"]["ns/op"] != 39183086 {
		t.Fatalf("round-trip lost data: %v", decoded)
	}
	// Deterministic key order for diff-friendly files.
	first := strings.Index(out.String(), "BenchmarkE5LocalAverage")
	second := strings.Index(out.String(), "BenchmarkLocalAverageDedup/dedup")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("keys not sorted:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}
