// Selfstab demonstrates the paper's Section-1.1 claim that local
// algorithms yield self-stabilising algorithms with constant
// stabilisation time. It runs the Theorem-3 averaging protocol on a torus
// in self-stabilising mode, wipes the state of half the nodes mid-run,
// and shows the outputs healing back to the exact fault-free solution
// within one information horizon.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"maxminlp"
)

func main() {
	seed := flag.Int64("seed", 1, "fault-injection seed")
	side := flag.Int("side", 6, "torus side length")
	radius := flag.Int("radius", 1, "averaging radius R")
	flag.Parse()

	in, _ := maxminlp.Torus([]int{*side, *side}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		log.Fatal(err)
	}

	ref, err := nw.RunSequential(maxminlp.AverageProtocol{Radius: *radius})
	if err != nil {
		log.Fatal(err)
	}

	p := maxminlp.StabilizingAverage{Radius: *radius}
	fault := p.Horizon() + 2
	rounds := fault + p.Horizon() + 3
	rng := rand.New(rand.NewSource(*seed))
	corrupted := 0
	run, err := nw.RunStabilizing(p, rounds, fault, func(nodes []*maxminlp.StabNodeHandle) {
		for _, h := range nodes {
			if rng.Intn(2) == 0 {
				h.Drop() // wipe this node's entire state
				corrupted++
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("torus %dx%d, averaging radius R=%d, horizon %d rounds\n",
		*side, *side, *radius, p.Horizon())
	fmt.Printf("fault at round %d: state of %d/%d nodes wiped\n\n", fault, corrupted, in.NumAgents())
	fmt.Printf("%5s  %22s  %10s\n", "round", "max |x - x_ref|", "ω(x)")
	for t, xs := range run.Outputs {
		worst := 0.0
		for v := range xs {
			worst = math.Max(worst, math.Abs(xs[v]-ref.X[v]))
		}
		marker := ""
		if t == fault {
			marker = "   <- fault injected"
		}
		if t == run.StableFrom {
			marker = "   <- stabilised (exact)"
		}
		fmt.Printf("%5d  %22.6g  %10.4f%s\n", t, worst, in.Objective(xs), marker)
	}
	fmt.Printf("\nstabilised from round %d; fault+horizon = %d — constant-time recovery, as §1.1 claims.\n",
		run.StableFrom, fault+p.Horizon())
}
