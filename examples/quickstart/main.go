// Quickstart: build a tiny max-min LP by hand and solve it three ways —
// the centralised LP optimum, the safe local algorithm (equation (2) of
// the paper), and the Theorem-3 local averaging algorithm.
//
// The instance is the motivating shape of the paper in miniature: three
// agents compete pairwise for two unit resources while two parties each
// depend on a different subset of the agents.
//
//	resources:  x0 + x1 ≤ 1,   x1 + x2 ≤ 1
//	parties:    ω ≤ x0 + x1,   ω ≤ x2
//
// The optimum puts everything of resource 1 into x2 (party 1's only
// supporter) and everything of resource 0 into x0/x1.
package main

import (
	"fmt"
	"log"

	"maxminlp"
)

func main() {
	b := maxminlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUniformParty(1, 0, 1)
	b.AddUniformParty(1, 2)
	in, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance:", in.Stats())

	opt, err := maxminlp.SolveOptimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal     ω = %.4f  x = %.3v\n", opt.Omega, opt.X)

	safe := maxminlp.Safe(in)
	fmt.Printf("safe        ω = %.4f  x = %.3v  (proven ratio ≤ ΔVI = %.0f)\n",
		in.Objective(safe), safe, maxminlp.SafeRatioBound(in))

	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, radius := range []int{1, 2} {
		avg, err := maxminlp.LocalAverage(in, g, radius)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("average R=%d ω = %.4f  x = %.3v  (certificate %.3f)\n",
			radius, in.Objective(avg.X), avg.X, avg.RatioCertificate())
	}

	// The same algorithms as real message-passing protocols: every agent
	// is a goroutine exchanging messages with its neighbours in H.
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := nw.RunGoroutines(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed average R=1: ω = %.4f after %d rounds, %d messages\n",
		in.Objective(tr.X), tr.Rounds, tr.Messages)

	// For repeated queries, hold a Solver session: the hypergraph, ball
	// indexes and solved local LPs persist across calls, and weight
	// changes re-solve only the neighbourhoods that can see them — with
	// results bit-identical to the one-shot calls above. (cmd/mmlpd
	// serves sessions like this one over HTTP.)
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	if err := sess.UpdateWeights([]maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 1, Agent: 2, Coeff: 2}, // x1 + 2·x2 ≤ 1
	}); err != nil {
		log.Fatal(err)
	}
	avg, err := sess.LocalAverage(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session after update: ω = %.4f  x = %.3v\n",
		sess.Instance().Objective(avg.X), avg.X)
}
