// Lowerbound walks through the Theorem-1 inapproximability construction
// of Section 4 step by step: it builds the template graph Q and the
// hypertree instance S, runs a local algorithm on S, selects the tree T_p
// with δ(p) ≥ 0, derives the restricted instance S', verifies every fact
// the proof relies on, and finally measures the approximation ratio the
// algorithm actually achieves on S' against the theorem's bound
// ΔVI/2 + 1/2 − 1/(2ΔVK − 2).
package main

import (
	"flag"
	"fmt"
	"log"

	"maxminlp"
)

func main() {
	deltaVI := flag.Int("dvi", 3, "support bound ΔVI ≥ 2")
	deltaVK := flag.Int("dvk", 2, "support bound ΔVK ≥ 2")
	flag.Parse()

	params := maxminlp.LowerBoundParams{
		DeltaVI:      *deltaVI,
		DeltaVK:      *deltaVK,
		R:            2,
		LocalHorizon: 1,
	}
	fmt.Printf("Theorem 1 bound for ΔVI=%d, ΔVK=%d: no local algorithm beats ratio %.4f\n\n",
		params.DeltaVI, params.DeltaVK, params.TheoremBound())

	c, err := maxminlp.BuildLowerBound(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 — template graph Q: %d-regular bipartite, %d vertices, girth ≥ %d (no cycle the\n",
		params.Degree(), c.Q.NumVertices(), params.MinCycle())
	fmt.Printf("         radius-%d views of a local algorithm could detect)\n", params.LocalHorizon)
	fmt.Printf("step 2 — instance S: one (d=%d, D=%d)-ary hypertree of height %d per Q-vertex;\n",
		c.D1, c.D2, 2*params.R-1)
	fmt.Printf("         %d agents, %d resources (type I), %d parties (types II and III)\n",
		c.S.NumAgents(), c.S.NumResources(), c.S.NumParties())

	// Run the safe algorithm — any deterministic local algorithm works
	// here; the construction is adversarial against all of them.
	x := maxminlp.Safe(c.S)
	p, delta := c.SelectP(x)
	fmt.Printf("step 3 — ran the safe algorithm on S; δ(p)=%.3f at p=%d (the proof needs δ(p) ≥ 0)\n", delta, p)

	sp, err := c.BuildSPrime(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 4 — restricted instance S': %d agents around hypertree T_%d\n",
		sp.Instance().NumAgents(), p)

	rep := c.Check(x, sp)
	fmt.Printf("step 5 — proof checks: tree-like=%v, witness ω=%.3f (exactly 1 expected),\n",
		rep.SPrimeForest, rep.WitnessOmega)
	fmt.Printf("         %d radius-%d views compared between S and S': identical=%v\n",
		rep.ViewsChecked, params.LocalHorizon, rep.ViewsIdentical)
	if !rep.OK() {
		log.Fatalf("construction checks failed: %v", rep.Errors)
	}

	// The punchline: the algorithm cannot tell S' from S on T_p, so its
	// solution is far from the optimum ω*(S') ≥ 1.
	opt, err := maxminlp.SolveOptimal(sp.Instance())
	if err != nil {
		log.Fatal(err)
	}
	achieved := sp.Instance().Objective(maxminlp.Safe(sp.Instance()))
	fmt.Printf("\nstep 6 — on S': optimal ω* = %.4f but the safe algorithm achieves ω = %.4f\n",
		opt.Omega, achieved)
	fmt.Printf("         measured ratio %.4f  vs  theorem bound %.4f\n",
		opt.Omega/achieved, params.TheoremBound())
	fmt.Println("\nno amount of constant-radius lookahead escapes this: the agents in T_p see")
	fmt.Println("identical neighbourhoods in S and S', yet the right answers differ.")
}
