// ISP reproduces the paper's second Section-2 application: an Internet
// service provider must split each major customer's traffic across
// bounded-capacity last-mile links and bounded-capacity access routers so
// that the minimum bandwidth any customer receives is maximised. Each
// (last-mile, router) routing option is an agent of the max-min LP.
//
// The example highlights the collaboration structure: routing options of
// the same customer cooperate (party hyperedges), options sharing a
// last-mile link or a router compete (resource hyperedges).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"maxminlp"
)

func main() {
	seed := flag.Int64("seed", 7, "topology seed")
	customers := flag.Int("customers", 12, "number of major customers")
	routers := flag.Int("routers", 6, "number of access routers")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	net := maxminlp.RandomISP(maxminlp.ISPOptions{
		Customers:            *customers,
		LastMilesPerCustomer: 2,
		Routers:              *routers,
		RoutersPerLastMile:   2,
	}, rng)
	in, err := net.Instance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d customers, %d last-mile links, %d routers, %d routing options\n",
		net.Customers, net.LastMiles, net.Routers, len(net.Options))
	fmt.Println("max-min LP:", in.Stats())

	opt, err := maxminlp.SolveOptimal(in)
	if err != nil {
		log.Fatal(err)
	}

	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	avg, err := maxminlp.LocalAverage(in, g, 2)
	if err != nil {
		log.Fatal(err)
	}
	safe := maxminlp.Safe(in)

	fmt.Printf("\nfair bandwidth (min over customers):\n")
	fmt.Printf("  optimal            %.4f\n", opt.Omega)
	fmt.Printf("  safe               %.4f (ratio %.3f, proven ≤ ΔVI = %.0f)\n",
		in.Objective(safe), opt.Omega/in.Objective(safe), maxminlp.SafeRatioBound(in))
	fmt.Printf("  local average R=2  %.4f (ratio %.3f, certificate %.3f)\n",
		in.Objective(avg.X), opt.Omega/in.Objective(avg.X), avg.RatioCertificate())

	// Per-customer breakdown under the local solution.
	fmt.Printf("\nper-customer bandwidth under local average R=2:\n")
	for k := 0; k < in.NumParties(); k++ {
		fmt.Printf("  customer %2d: %.4f\n", k, in.PartyBenefit(k, avg.X))
	}
}
