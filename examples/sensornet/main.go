// Sensornet reproduces the paper's Section-2 motivating application: a
// two-tier sensor network in which battery-powered sensors forward data
// about monitored areas through battery-powered relays. Choosing how much
// data to send over each (sensor, relay) wireless link so that the
// minimum per-area data rate is maximised — equivalently, so that network
// lifetime is maximised at equal average rates — is exactly a max-min LP.
//
// The program samples a random deployment, prints its shape, and compares
// the LP optimum against the two local algorithms, including a fully
// distributed run where every wireless link is simulated by a goroutine.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"maxminlp"
)

func main() {
	seed := flag.Int64("seed", 42, "deployment seed")
	sensors := flag.Int("sensors", 30, "number of sensors")
	relays := flag.Int("relays", 8, "number of relays")
	areas := flag.Int("areas", 10, "number of monitored areas")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	sn := maxminlp.RandomSensorNetwork(maxminlp.SensorNetworkOptions{
		Sensors:           *sensors,
		Relays:            *relays,
		Areas:             *areas,
		RadioRange:        0.35,
		SenseRange:        0.3,
		MaxLinksPerSensor: 3,
	}, rng)

	in, err := sn.Instance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d sensors, %d relays, %d areas, %d wireless links\n",
		len(sn.Sensors), len(sn.Relays), len(sn.Areas), len(sn.Links))
	fmt.Println("max-min LP:", in.Stats())

	opt, err := maxminlp.SolveOptimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s %10s %12s\n", "algorithm", "min rate", "vs optimal")
	fmt.Printf("%-22s %10.4f %12s\n", "LP optimum (global)", opt.Omega, "1.000x")

	report := func(name string, x []float64) {
		omega := in.Objective(x)
		fmt.Printf("%-22s %10.4f %11.3fx\n", name, omega, opt.Omega/omega)
	}
	report("safe (local, r=1)", maxminlp.Safe(in))

	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, radius := range []int{1, 2} {
		avg, err := maxminlp.LocalAverage(in, g, radius)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("local average (R=%d)", radius), avg.X)
	}

	// Distributed execution: each wireless link decides its data rate by
	// exchanging messages with links it shares a battery or an area with.
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := nw.RunGoroutines(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed average R=1 finished in %d rounds with %d messages; ω = %.4f\n",
		tr.Rounds, tr.Messages, in.Objective(tr.X))
	fmt.Println("interpretation: run each link at its rate; the first battery dies after 1 time unit,")
	fmt.Println("and until then every monitored area delivers at least ω data per unit time.")
}
