package maxminlp_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"maxminlp"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: build an instance, solve it three ways, check the guarantees.
func TestPublicAPIEndToEnd(t *testing.T) {
	b := maxminlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUniformParty(1, 0, 1)
	b.AddUniformParty(1, 2)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	opt, err := maxminlp.SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Omega-1) > 1e-7 {
		t.Fatalf("ω* = %v, want 1", opt.Omega)
	}

	safe := maxminlp.Safe(in)
	if v := in.Violation(safe); v > 1e-9 {
		t.Fatalf("safe infeasible: %v", v)
	}
	if ratio := opt.Omega / in.Objective(safe); ratio > maxminlp.SafeRatioBound(in)+1e-9 {
		t.Fatalf("safe ratio %v exceeds ΔVI bound %v", ratio, maxminlp.SafeRatioBound(in))
	}

	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	avg, err := maxminlp.LocalAverage(in, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(avg.X); v > 1e-9 {
		t.Fatalf("average infeasible: %v", v)
	}
	if ratio := opt.Omega / in.Objective(avg.X); ratio > avg.RatioCertificate()+1e-6 {
		t.Fatalf("ratio %v exceeds certificate %v", ratio, avg.RatioCertificate())
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.RunGoroutines(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := maxminlp.LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.X {
		if tr.X[v] != want.X[v] {
			t.Fatalf("agent %d: distributed %v != centralised %v", v, tr.X[v], want.X[v])
		}
	}
}

func TestPublicAPILowerBound(t *testing.T) {
	params := maxminlp.LowerBoundParams{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c, err := maxminlp.BuildLowerBound(params)
	if err != nil {
		t.Fatal(err)
	}
	x := maxminlp.Safe(c.S)
	sp, err := c.DeriveSPrime(x)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Check(x, sp)
	if !rep.OK() {
		t.Fatalf("checks failed: %v", rep.Errors)
	}
	if params.TheoremBound() != 1.5 {
		t.Fatalf("bound = %v, want 1.5", params.TheoremBound())
	}
}

func TestPublicAPIApplications(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sn := maxminlp.RandomSensorNetwork(maxminlp.SensorNetworkOptions{
		Sensors: 10, Relays: 4, Areas: 4,
		RadioRange: 0.4, SenseRange: 0.35, MaxLinksPerSensor: 2,
	}, rng)
	if _, err := sn.Instance(); err != nil {
		t.Fatal(err)
	}
	isp := maxminlp.RandomISP(maxminlp.ISPOptions{
		Customers: 4, LastMilesPerCustomer: 2, Routers: 3, RoutersPerLastMile: 2,
	}, rng)
	if _, err := isp.Instance(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	in, lat := maxminlp.Grid([]int{4, 4}, maxminlp.LatticeOptions{})
	if in.NumAgents() != 16 || lat.NumCells() != 16 {
		t.Fatal("grid shape wrong")
	}
	rng := rand.New(rand.NewSource(2))
	r := maxminlp.RandomInstance(maxminlp.RandomOptions{
		Agents: 10, Resources: 8, Parties: 4, MaxVI: 3, MaxVK: 2,
	}, rng)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPICSR exercises the flat-index surface: the CSR attached to
// NewGraph, the standalone constructor, SafeFlat agreement with Safe,
// the precomputed BallIndex, and the sharded engine.
func TestPublicAPICSR(t *testing.T) {
	in, _ := maxminlp.Torus([]int{5, 5}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	csr := g.CSR()
	if csr == nil {
		t.Fatal("NewGraph did not attach a CSR index")
	}
	if csr.NumAgents() != in.NumAgents() || csr.Nonzeros() != in.Stats().Nonzeros {
		t.Fatal("CSR shape disagrees with the instance")
	}
	if maxminlp.NewCSR(in).Nonzeros() != csr.Nonzeros() {
		t.Fatal("standalone NewCSR disagrees")
	}

	safe := maxminlp.Safe(in)
	for v, x := range maxminlp.SafeFlat(csr) {
		if x != safe[v] {
			t.Fatalf("SafeFlat diverged from Safe at %d", v)
		}
	}

	bi := g.BallIndex(1, 4)
	for v := 0; v < in.NumAgents(); v++ {
		want := g.Ball(v, 1)
		got := bi.Ball(v)
		if len(got) != len(want) || bi.Size(v) != len(want) {
			t.Fatalf("ball size mismatch at %d", v)
		}
		for j := range want {
			if int(got[j]) != want[j] {
				t.Fatalf("ball mismatch at %d", v)
			}
			if !bi.Contains(v, got[j]) {
				t.Fatalf("Contains(%d, %d) = false", v, got[j])
			}
		}
	}

	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := nw.RunSequential(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := nw.RunSharded(maxminlp.AverageProtocol{Radius: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.X {
		if sh.X[v] != seq.X[v] {
			t.Fatalf("sharded engine diverged at %d", v)
		}
	}
	if sh.Messages != seq.Messages || sh.Payload != seq.Payload {
		t.Fatal("sharded trace accounting diverged")
	}
}

// TestPublicAPISession exercises the Solver session surface end to end:
// construction, every query method against its free function, a weight
// update with incremental re-solve, and the session-backed distributed
// network.
func TestPublicAPISession(t *testing.T) {
	in, _ := maxminlp.Torus([]int{8, 8}, maxminlp.LatticeOptions{})
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})

	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	ref, err := maxminlp.LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.X {
		if got.X[v] != ref.X[v] {
			t.Fatalf("session X[%d] = %v, want %v", v, got.X[v], ref.X[v])
		}
	}
	pb, rb, err := sess.Certificate(1)
	if err != nil {
		t.Fatal(err)
	}
	if pb != ref.PartyBound || rb != ref.ResourceBound {
		t.Fatalf("certificate (%v,%v) != (%v,%v)", pb, rb, ref.PartyBound, ref.ResourceBound)
	}
	safe := sess.Safe()
	for v, want := range maxminlp.Safe(in) {
		if safe[v] != want {
			t.Fatalf("session Safe[%d] = %v, want %v", v, safe[v], want)
		}
	}

	// Weight update: incremental result must equal a cold solve of the
	// mutated instance.
	deltas := []maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: 3},
		{Kind: maxminlp.PartyWeight, Row: 2, Agent: in.Party(2)[0].Agent, Coeff: 0.5},
	}
	if err := sess.UpdateWeights(deltas); err != nil {
		t.Fatal(err)
	}
	inc, err := sess.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := in.UpdateCoeffs(
		[]maxminlp.CoeffUpdate{{Row: 0, Agent: deltas[0].Agent, Coeff: 3}},
		[]maxminlp.CoeffUpdate{{Row: 2, Agent: deltas[1].Agent, Coeff: 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := maxminlp.LocalAverage(mut, maxminlp.NewGraph(mut, maxminlp.GraphOptions{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold.X {
		if inc.X[v] != cold.X[v] {
			t.Fatalf("incremental X[%d] = %v, want %v", v, inc.X[v], cold.X[v])
		}
	}
	if sess.Stats().IncrementalSolves != 1 {
		t.Errorf("stats = %+v, want one incremental solve", sess.Stats())
	}

	// Session-backed distributed run agrees with the session's own
	// averaging output.
	nw, err := maxminlp.NewSessionNetwork(sess)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.RunSequential(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range tr.X {
		if tr.X[v] != inc.X[v] {
			t.Fatalf("distributed X[%d] = %v, want %v", v, tr.X[v], inc.X[v])
		}
	}
}

// TestPublicAPITopology exercises the churn surface end to end through
// the facade: structural updates on an Instance and a Solver session,
// plus a resynced session network, all bit-identical to cold solves of
// the mutated instance.
func TestPublicAPITopology(t *testing.T) {
	in, _ := maxminlp.Torus([]int{6, 6}, maxminlp.LatticeOptions{})
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	if _, err := sess.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	nw, err := maxminlp.NewSessionNetwork(sess)
	if err != nil {
		t.Fatal(err)
	}

	ops := []maxminlp.TopoUpdate{
		maxminlp.AddAgent(),
		maxminlp.AddResourceEdge(0, 36, 1.5),
		maxminlp.AddPartyEdge(2, 36, 0.75),
		maxminlp.RemoveAgent(7),
		maxminlp.RemoveResourceEdge(4, 10),
	}
	mirror, diff, err := in.ApplyTopo(ops)
	if err != nil {
		t.Fatal(err)
	}
	if diff.NumAgents != 37 || len(diff.AddedAgents) != 1 || len(diff.RemovedAgents) != 1 {
		t.Fatalf("diff = %+v", diff)
	}
	if _, err := sess.UpdateTopology(ops); err != nil {
		t.Fatal(err)
	}

	inc, err := sess.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := maxminlp.LocalAverage(mirror, maxminlp.NewGraph(mirror, maxminlp.GraphOptions{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold.X {
		if inc.X[v] != cold.X[v] {
			t.Fatalf("post-churn X[%d] = %v, want %v", v, inc.X[v], cold.X[v])
		}
	}
	if inc.X[7] != 0 {
		t.Errorf("removed agent has activity %v, want 0", inc.X[7])
	}
	st := sess.Stats()
	if st.TopoUpdates != 1 || st.BallsPatched == 0 || st.BallIndexBuilds != 1 {
		t.Errorf("churn stats implausible: %+v", st)
	}

	// The session network serves the mutated topology after Resync.
	if err := nw.Resync(); err != nil {
		t.Fatal(err)
	}
	tr, err := nw.RunSequential(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range tr.X {
		if tr.X[v] != inc.X[v] {
			t.Fatalf("distributed post-churn X[%d] = %v, want %v", v, tr.X[v], inc.X[v])
		}
	}
}

// TestPublicAPIObservability exercises the metrics facade: registry
// construction, bundle attachment to sessions and networks, snapshot
// reads, Prometheus exposition, and the nil-registry disabled mode.
func TestPublicAPIObservability(t *testing.T) {
	in, _ := maxminlp.Torus([]int{6, 6}, maxminlp.LatticeOptions{})

	reg := maxminlp.NewMetricsRegistry()
	sm := maxminlp.NewSolveMetrics(reg)
	sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	sess.SetObs(sm)
	if _, err := sess.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LocalAverage(1); err != nil { // warm hit
		t.Fatal(err)
	}
	if sm.FullSolves.Value() != 1 || sm.WarmHits.Value() != 1 {
		t.Fatalf("passes: full=%d warm=%d, want 1/1", sm.FullSolves.Value(), sm.WarmHits.Value())
	}
	var snap maxminlp.HistogramSnapshot = sm.PhaseLPSolve.Snapshot()
	if snap.Count == 0 || snap.P99 < snap.P50 {
		t.Fatalf("lp_solve snapshot implausible: %+v", snap)
	}
	if sm.LP.Solves.Value() == 0 {
		t.Fatal("no LP solves counted")
	}

	dm := maxminlp.NewDistMetrics(reg)
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetObs(dm)
	if _, err := nw.RunGoroutines(maxminlp.AverageProtocol{Radius: 1}); err != nil {
		t.Fatal(err)
	}
	if dm.Rounds.Value() == 0 || dm.Messages.Value() == 0 {
		t.Fatalf("dist metrics empty: rounds=%d messages=%d", dm.Rounds.Value(), dm.Messages.Value())
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"mmlp_solve_phase_seconds_bucket",
		"mmlp_solve_passes_total",
		"mmlp_lp_solves_total",
		"mmlp_dist_messages_total",
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}

	// Disabled mode: a nil registry hands out nil bundles whose methods
	// all no-op, so attaching one is the same as never instrumenting.
	var off *maxminlp.MetricsRegistry
	offSess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
	offSess.SetObs(maxminlp.NewSolveMetrics(off))
	want, err := sess.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := offSess.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.X {
		if want.X[v] != got.X[v] {
			t.Fatalf("instrumented and disabled sessions disagree at agent %d", v)
		}
	}
}
